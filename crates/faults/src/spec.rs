//! The serializable description of a fault scenario.

use crate::dist::MtbfDistribution;
use serde::{Deserialize, Serialize};

/// Parameters of a fault scenario. All rates are per *host* (the shared
/// link has its own window process); a rate of `0.0` disables that fault
/// class, and [`FaultSpec::disabled`] disables everything.
///
/// The spec is a pure description: combine it with a platform size,
/// horizon, and the run's master seed via [`crate::FaultPlan::generate`]
/// to obtain the concrete schedule.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Mean time to the (single, permanent) crash of each host, seconds;
    /// `0` disables crashes.
    #[serde(default)]
    pub mtbf_secs: f64,
    /// Distribution family of the crash time.
    #[serde(default)]
    pub crash_dist: MtbfDistribution,
    /// Mean time between transient blackouts per host, seconds; `0`
    /// disables blackouts.
    #[serde(default)]
    pub blackout_mtbf_secs: f64,
    /// Mean blackout duration (repair time), seconds.
    #[serde(default)]
    pub blackout_repair_secs: f64,
    /// Mean time between degraded-bandwidth windows on the shared link,
    /// seconds; `0` disables link degradation.
    #[serde(default)]
    pub link_mtbf_secs: f64,
    /// Mean duration of a degraded-bandwidth window, seconds.
    #[serde(default)]
    pub link_window_secs: f64,
    /// Bandwidth multiplier inside a degraded window (`0 < factor <= 1`);
    /// must be set explicitly whenever `link_mtbf_secs > 0`.
    #[serde(default)]
    pub link_factor: f64,
    /// Iterations between implicit checkpoints for the failure-aware CR
    /// strategy (its rollback granularity); `0` means the default of 5
    /// (see [`FaultSpec::checkpoint_every`]).
    #[serde(default)]
    pub checkpoint_interval: usize,
    /// Number of failure domains (racks). Host `h` belongs to domain
    /// `h % domains`; `0` disables the domain layer entirely (and with
    /// it correlated shocks).
    #[serde(default)]
    pub domains: usize,
    /// Mean time between correlated shock storms *per domain*, seconds;
    /// `0` disables shocks. A storm lasts [`FaultSpec::shock_window_secs`]
    /// and each host of the domain dies during it with probability
    /// [`FaultSpec::shock_severity`], at an instant drawn uniformly
    /// inside the window — so one shared event can take a whole rack
    /// down, and a storming rack keeps killing hosts placed into it.
    #[serde(default)]
    pub shock_mtbf_secs: f64,
    /// Duration of one shock storm, seconds; must be positive whenever
    /// shocks are enabled.
    #[serde(default)]
    pub shock_window_secs: f64,
    /// Per-host kill probability per storm (`0 < p <= 1`, with 1
    /// taking the whole domain down in one event); must be set
    /// explicitly whenever `shock_mtbf_secs > 0`.
    #[serde(default)]
    pub shock_severity: f64,
    /// Log-uniform per-host MTBF multiplier spread: each host's
    /// effective crash MTBF is `mtbf_secs × m` with `m` log-uniform in
    /// `[1/spread, spread]`, drawn from a salted per-host stream. `0`
    /// (or `1`) disables the spread (homogeneous hosts). This is a
    /// *modifier* of the crash class, not a class of its own: toggling
    /// it rescales crash instants but consumes no extra draws.
    #[serde(default)]
    pub host_mtbf_spread: f64,
    /// Extra seed mixed into the fault streams, so different fault
    /// scenarios can be layered over identical platform realizations.
    #[serde(default)]
    pub fault_seed: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::disabled()
    }
}

impl FaultSpec {
    /// A spec with every fault class turned off.
    pub fn disabled() -> Self {
        FaultSpec {
            mtbf_secs: 0.0,
            crash_dist: MtbfDistribution::default(),
            blackout_mtbf_secs: 0.0,
            blackout_repair_secs: 0.0,
            link_mtbf_secs: 0.0,
            link_window_secs: 0.0,
            link_factor: 0.0,
            checkpoint_interval: 0,
            domains: 0,
            shock_mtbf_secs: 0.0,
            shock_window_secs: 0.0,
            shock_severity: 0.0,
            host_mtbf_spread: 0.0,
            fault_seed: 0,
        }
    }

    /// Correlated rack shocks only: `domains` failure domains, storms
    /// every `shock_mtbf_secs` per domain lasting `shock_window_secs`,
    /// killing each domain host with probability `shock_severity`.
    pub fn correlated_shocks(
        domains: usize,
        shock_mtbf_secs: f64,
        shock_window_secs: f64,
        shock_severity: f64,
        fault_seed: u64,
    ) -> Self {
        FaultSpec {
            domains,
            shock_mtbf_secs,
            shock_window_secs,
            shock_severity,
            fault_seed,
            ..FaultSpec::disabled()
        }
    }

    /// Permanent crashes only, at the given MTBF, under the default
    /// (bursty hyperexponential) distribution.
    pub fn crashes_only(mtbf_secs: f64, fault_seed: u64) -> Self {
        FaultSpec {
            mtbf_secs,
            fault_seed,
            ..FaultSpec::disabled()
        }
    }

    /// Whether any fault class is active.
    pub fn is_enabled(&self) -> bool {
        self.mtbf_secs > 0.0
            || self.blackout_mtbf_secs > 0.0
            || self.link_mtbf_secs > 0.0
            || self.shocks_enabled()
    }

    /// Whether the correlated-shock layer is active (needs both a
    /// domain count and a shock rate).
    pub fn shocks_enabled(&self) -> bool {
        self.domains > 0 && self.shock_mtbf_secs > 0.0
    }

    /// The failure-aware CR rollback granularity: `checkpoint_interval`,
    /// with `0` standing for the default of 5 iterations.
    pub fn checkpoint_every(&self) -> usize {
        if self.checkpoint_interval == 0 {
            5
        } else {
            self.checkpoint_interval
        }
    }

    /// Validates every knob.
    ///
    /// # Panics
    /// Panics on negative rates, a blackout rate without a repair time,
    /// a link rate without a window duration, or a link factor outside
    /// `(0, 1]` while link degradation is enabled.
    pub fn validate(&self) {
        assert!(
            self.mtbf_secs >= 0.0 && self.mtbf_secs.is_finite(),
            "mtbf_secs must be finite and >= 0"
        );
        self.crash_dist.validate();
        assert!(self.blackout_mtbf_secs >= 0.0 && self.blackout_mtbf_secs.is_finite());
        if self.blackout_mtbf_secs > 0.0 {
            assert!(
                self.blackout_repair_secs > 0.0,
                "blackouts need a positive repair time"
            );
        }
        assert!(self.link_mtbf_secs >= 0.0 && self.link_mtbf_secs.is_finite());
        if self.link_mtbf_secs > 0.0 {
            assert!(
                self.link_window_secs > 0.0,
                "link degradation needs a positive window duration"
            );
            assert!(
                self.link_factor > 0.0 && self.link_factor <= 1.0,
                "link_factor must be in (0, 1]"
            );
        }
        assert!(self.shock_mtbf_secs >= 0.0 && self.shock_mtbf_secs.is_finite());
        if self.shock_mtbf_secs > 0.0 {
            assert!(self.domains >= 1, "shocks need at least one failure domain");
            assert!(
                self.shock_window_secs > 0.0,
                "shocks need a positive storm window"
            );
            assert!(
                self.shock_severity > 0.0 && self.shock_severity <= 1.0,
                "shock_severity must be in (0, 1]"
            );
        }
        assert!(
            self.host_mtbf_spread == 0.0
                || (self.host_mtbf_spread >= 1.0 && self.host_mtbf_spread.is_finite()),
            "host_mtbf_spread must be 0 (off) or >= 1"
        );
    }

    /// Failure domain of `host` (`host % domains`), or `None` when the
    /// domain layer is off.
    pub fn domain_of(&self, host: usize) -> Option<usize> {
        (self.domains > 0).then(|| host % self.domains)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spec_is_valid_and_inert() {
        let s = FaultSpec::disabled();
        s.validate();
        assert!(!s.is_enabled());
        assert_eq!(s.checkpoint_every(), 5);
        assert!(FaultSpec::crashes_only(1000.0, 3).is_enabled());
    }

    #[test]
    fn round_trips_through_json_with_defaults() {
        let s = FaultSpec::crashes_only(5_000.0, 9);
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        // Sparse documents fill in the defaults.
        let sparse: FaultSpec = serde_json::from_str(r#"{"mtbf_secs": 2000.0}"#).unwrap();
        assert_eq!(sparse.mtbf_secs, 2000.0);
        assert_eq!(sparse.crash_dist, MtbfDistribution::HyperExp { cv2: 4.0 });
        assert_eq!(sparse.checkpoint_every(), 5);
        sparse.validate();
    }

    #[test]
    fn shock_layer_enables_and_maps_domains() {
        let s = FaultSpec::correlated_shocks(4, 2_000.0, 300.0, 0.5, 3);
        s.validate();
        assert!(s.is_enabled() && s.shocks_enabled());
        assert_eq!(s.domain_of(0), Some(0));
        assert_eq!(s.domain_of(7), Some(3));
        assert_eq!(FaultSpec::disabled().domain_of(7), None);
        // Sparse documents without the new fields still parse, with the
        // shock layer off and full severity.
        let sparse: FaultSpec = serde_json::from_str(r#"{"mtbf_secs": 2000.0}"#).unwrap();
        assert!(!sparse.shocks_enabled());
        assert_eq!(sparse.shock_severity, 0.0);
        assert_eq!(sparse.host_mtbf_spread, 0.0);
    }

    #[test]
    #[should_panic(expected = "storm window")]
    fn rejects_shocks_without_window() {
        FaultSpec {
            domains: 2,
            shock_mtbf_secs: 100.0,
            ..FaultSpec::disabled()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "host_mtbf_spread")]
    fn rejects_sub_unity_spread() {
        FaultSpec {
            mtbf_secs: 1_000.0,
            host_mtbf_spread: 0.5,
            ..FaultSpec::disabled()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "repair")]
    fn rejects_blackouts_without_repair() {
        FaultSpec {
            blackout_mtbf_secs: 100.0,
            ..FaultSpec::disabled()
        }
        .validate();
    }
}
