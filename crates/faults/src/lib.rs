//! Deterministic fault injection for the swapping study.
//!
//! The paper compares SWAP against Checkpoint/Restart, but the base
//! reproduction only models *slowdown* — no host ever dies. This crate
//! layers a seed-derived fault model over the DES timeline: permanent
//! crashes (hyperexponential or Weibull MTBF), transient blackouts with
//! repair times, and degraded-bandwidth windows on the shared link.
//!
//! Everything is generated up front from `(master seed, fault seed)` into
//! a [`FaultPlan`] — a pure value the executors query. That makes every
//! fault scenario bit-reproducible across `--jobs` counts and repeated
//! runs: no randomness is consumed during execution, and the fault
//! streams are derived from a seed namespace disjoint from the platform
//! realization streams, so *enabling* faults never perturbs host speeds
//! or load traces.
//!
//! ```
//! use faults::{FaultSpec, FaultPlan};
//!
//! let spec = FaultSpec::crashes_only(5_000.0, 1);
//! let plan = FaultPlan::generate(&spec, 16, 50_000.0, 0);
//! let again = FaultPlan::generate(&spec, 16, 50_000.0, 0);
//! assert_eq!(plan, again); // bit-reproducible
//! ```

#![warn(missing_docs)]

mod dist;
mod plan;
mod spec;

pub use dist::MtbfDistribution;
pub use plan::{FaultPlan, HostFaultSchedule, LinkDegradedWindow};
pub use spec::FaultSpec;
