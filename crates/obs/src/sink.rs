//! Event sinks: where instrumented code sends its [`TraceEvent`]s.

use crate::event::TraceEvent;
use crate::trace::Trace;
use std::sync::{Arc, Mutex};

/// Receives events from instrumented code.
///
/// Emission takes `&self` so a sink can be shared across threads (the
/// minimpi runtime emits from the manager and from worker threads); the
/// provided [`Collector`] locks internally. Simulator strategies run a
/// whole replication on one thread, so their event order within a run is
/// the program order of the simulation itself.
pub trait TraceSink: Send + Sync {
    fn emit(&self, event: TraceEvent);
}

/// Discards everything (useful as an explicit "tracing off" sink).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&self, _event: TraceEvent) {}
}

/// Accumulates events in memory, in emission order.
#[derive(Debug, Default)]
pub struct Collector {
    events: Mutex<Vec<TraceEvent>>,
}

impl Collector {
    pub fn new() -> Self {
        Collector::default()
    }

    /// Consumes the collector, yielding the recorded trace.
    pub fn into_trace(self) -> Trace {
        Trace {
            events: self.events.into_inner().expect("collector lock poisoned"),
        }
    }

    /// Copies the events recorded so far.
    pub fn snapshot(&self) -> Trace {
        Trace {
            events: self.events.lock().expect("collector lock poisoned").clone(),
        }
    }

    pub fn len(&self) -> usize {
        self.events.lock().expect("collector lock poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for Collector {
    fn emit(&self, event: TraceEvent) {
        self.events
            .lock()
            .expect("collector lock poisoned")
            .push(event);
    }
}

/// A cloneable, shareable handle to a sink — the form configuration
/// structs carry (e.g. minimpi's `RuntimeConfig`), since they need
/// `Clone` and the trait object alone is not.
#[derive(Clone)]
pub struct SharedSink(Arc<dyn TraceSink>);

impl SharedSink {
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        SharedSink(sink)
    }

    /// Convenience: a shared collector plus a handle for draining it.
    pub fn collector() -> (Self, Arc<Collector>) {
        let c = Arc::new(Collector::new());
        (SharedSink(c.clone()), c)
    }
}

// `Debug` can't be derived over a `dyn` trait object; the handle is
// opaque anyway.
impl std::fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SharedSink(..)")
    }
}

impl TraceSink for SharedSink {
    fn emit(&self, event: TraceEvent) {
        self.0.emit(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_preserves_emission_order() {
        let c = Collector::new();
        for i in 0..5 {
            c.emit(TraceEvent::IterEnd {
                t: i as f64,
                iter: i,
                compute_end: i as f64,
            });
        }
        let trace = c.into_trace();
        assert_eq!(trace.events.len(), 5);
        for (i, e) in trace.events.iter().enumerate() {
            assert_eq!(e.time(), i as f64);
        }
    }

    #[test]
    fn shared_sink_feeds_the_underlying_collector() {
        let (sink, collector) = SharedSink::collector();
        let clone = sink.clone();
        clone.emit(TraceEvent::Probe {
            t: 1.0,
            host: 2,
            rate: 3.0,
        });
        sink.emit(TraceEvent::Probe {
            t: 2.0,
            host: 2,
            rate: 3.5,
        });
        assert_eq!(collector.len(), 2);
        assert!(format!("{sink:?}").contains("SharedSink"));
    }
}
