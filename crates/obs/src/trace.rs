//! Trace containers: one run's event stream, and a bundle of labeled
//! runs (the unit the exporters consume).

use crate::event::TraceEvent;
use serde::{Deserialize, Serialize};

/// One run's events, in emission order.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    pub events: Vec<TraceEvent>,
}

impl Trace {
    pub fn new() -> Self {
        Trace::default()
    }
}

/// A labeled, seeded run trace. `label` is typically the strategy name;
/// the (label, seed) pair identifies the run in every export format.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunTrace {
    pub label: String,
    pub seed: u64,
    pub trace: Trace,
}

/// The full artifact of a traced experiment: runs in deterministic
/// (strategy-order × seed-order) sequence, independent of how many
/// worker threads produced them.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceBundle {
    pub runs: Vec<RunTrace>,
}

impl TraceBundle {
    pub fn new() -> Self {
        TraceBundle::default()
    }

    pub fn push(&mut self, label: impl Into<String>, seed: u64, trace: Trace) {
        self.runs.push(RunTrace {
            label: label.into(),
            seed,
            trace,
        });
    }

    /// Total number of events across all runs.
    pub fn event_count(&self) -> usize {
        self.runs.iter().map(|r| r.trace.events.len()).sum()
    }
}
