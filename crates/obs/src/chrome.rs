//! Chrome trace-event export (the JSON Array Format with a
//! `traceEvents` wrapper), loadable in Perfetto or `chrome://tracing`.
//!
//! Layout: one *process* per run (pid = run index, named
//! `"<label> (seed N)"`), one *thread track* per host (tid = host id)
//! carrying compute slices, plus a `manager` track (tid
//! [`MANAGER_TID`]) carrying decisions, swap executions and
//! checkpoints. Swap executions additionally draw a flow arrow from the
//! vacated host's track to the receiving host's track. Load changes
//! become counter tracks (`ph: "C"`), so the external load each host
//! sees is visible under the compute slices it perturbs. Protocol-DES
//! runs add a `link` track (tid [`LINK_TID`]) of per-message slices
//! named by round phase, a `decision compute` slice on the manager
//! track, and a `link queue` occupancy counter.
//!
//! The vendored serde_json has no `json!` macro, so events are built as
//! explicit [`Value`] trees; `Value::Map` preserves insertion order,
//! keeping the output byte-deterministic.

use crate::event::TraceEvent;
use crate::trace::TraceBundle;
use serde::value::{Number, Value};

/// Synthetic tid for the per-run swap-manager track (well above any
/// plausible host id).
pub const MANAGER_TID: u64 = 1_000_000;

/// Synthetic tid for the per-run shared-link track carrying protocol-DES
/// message slices.
pub const LINK_TID: u64 = 1_000_001;

fn str_v(v: impl Into<String>) -> Value {
    Value::Str(v.into())
}

fn u64_v(v: u64) -> Value {
    Value::Num(Number::U64(v))
}

fn f64_v(v: f64) -> Value {
    Value::Num(Number::F64(v))
}

/// Simulated seconds → trace microseconds.
fn us(t: f64) -> Value {
    f64_v(t * 1e6)
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Map(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// A complete-slice event (`ph: "X"`).
fn slice(
    name: String,
    cat: &str,
    pid: u64,
    tid: u64,
    start: f64,
    end: f64,
    args: Option<Value>,
) -> Value {
    let mut pairs = vec![
        ("name", str_v(name)),
        ("cat", str_v(cat)),
        ("ph", str_v("X")),
        ("ts", us(start)),
        ("dur", us((end - start).max(0.0))),
        ("pid", u64_v(pid)),
        ("tid", u64_v(tid)),
    ];
    if let Some(a) = args {
        pairs.push(("args", a));
    }
    obj(pairs)
}

/// An instant event (`ph: "i"`, thread scope).
fn instant(name: String, cat: &str, pid: u64, tid: u64, t: f64, args: Option<Value>) -> Value {
    let mut pairs = vec![
        ("name", str_v(name)),
        ("cat", str_v(cat)),
        ("ph", str_v("i")),
        ("s", str_v("t")),
        ("ts", us(t)),
        ("pid", u64_v(pid)),
        ("tid", u64_v(tid)),
    ];
    if let Some(a) = args {
        pairs.push(("args", a));
    }
    obj(pairs)
}

/// A metadata event naming a process or thread.
fn metadata(name: &str, pid: u64, tid: u64, value: String) -> Value {
    obj(vec![
        ("name", str_v(name)),
        ("ph", str_v("M")),
        ("pid", u64_v(pid)),
        ("tid", u64_v(tid)),
        ("args", obj(vec![("name", str_v(value))])),
    ])
}

/// Flow start/finish pair for a swap arrow between two host tracks.
fn flow(ph: &str, id: u64, pid: u64, tid: u64, t: f64) -> Value {
    let mut pairs = vec![
        ("name", str_v("swap")),
        ("cat", str_v("swap")),
        ("ph", str_v(ph)),
        ("id", u64_v(id)),
        ("ts", us(t)),
        ("pid", u64_v(pid)),
        ("tid", u64_v(tid)),
    ];
    if ph == "f" {
        // Bind to the enclosing slice's end, the conventional terminus.
        pairs.insert(4, ("bp", str_v("e")));
    }
    obj(pairs)
}

/// Converts a bundle to Chrome trace JSON text.
pub fn to_chrome_trace(bundle: &TraceBundle) -> String {
    let mut events: Vec<Value> = Vec::new();
    let mut flow_id: u64 = 0;

    for (pid, run) in bundle.runs.iter().enumerate() {
        let pid = pid as u64;
        events.push(metadata(
            "process_name",
            pid,
            0,
            format!("{} (seed {})", run.label, run.seed),
        ));
        events.push(metadata("thread_name", pid, MANAGER_TID, "manager".into()));
        let mut named_hosts: Vec<u64> = Vec::new();
        let mut host_track = |host: u64, events: &mut Vec<Value>| {
            if !named_hosts.contains(&host) {
                named_hosts.push(host);
                events.push(metadata("thread_name", pid, host, format!("host {host}")));
            }
        };
        // The shared-link track is named lazily, on the first protocol
        // message, so non-protocol runs carry no extra metadata.
        let mut link_named = false;

        for e in &run.trace.events {
            match e {
                TraceEvent::IterStart { .. } => {}
                TraceEvent::ComputeSpan {
                    host,
                    iter,
                    start,
                    end,
                } => {
                    let host = *host as u64;
                    host_track(host, &mut events);
                    events.push(slice(
                        format!("iter {iter}"),
                        "compute",
                        pid,
                        host,
                        *start,
                        *end,
                        None,
                    ));
                }
                TraceEvent::IterEnd {
                    t,
                    iter,
                    compute_end,
                } => {
                    events.push(instant(
                        format!("iter {iter} end"),
                        "iteration",
                        pid,
                        MANAGER_TID,
                        *t,
                        Some(obj(vec![("compute_end", f64_v(*compute_end))])),
                    ));
                }
                TraceEvent::Probe { t, host, rate } => {
                    let host = *host as u64;
                    host_track(host, &mut events);
                    events.push(instant(
                        "probe".into(),
                        "probe",
                        pid,
                        host,
                        *t,
                        Some(obj(vec![("rate", f64_v(*rate))])),
                    ));
                }
                TraceEvent::LoadChange { t, host, competing } => {
                    events.push(obj(vec![
                        ("name", str_v(format!("load host {host}"))),
                        ("cat", str_v("load")),
                        ("ph", str_v("C")),
                        ("ts", us(*t)),
                        ("pid", u64_v(pid)),
                        ("args", obj(vec![("competing", f64_v(*competing))])),
                    ]));
                }
                TraceEvent::SwapDecision {
                    t,
                    iter,
                    old_iter_time,
                    swap_time,
                    app_improvement,
                    stopped_because,
                    admitted,
                    rejected,
                } => {
                    let mut args = vec![
                        ("old_iter_time", f64_v(*old_iter_time)),
                        ("swap_time", f64_v(*swap_time)),
                        ("app_improvement", f64_v(*app_improvement)),
                        ("stopped_because", str_v(stopped_because.key())),
                        ("admitted", u64_v(admitted.len() as u64)),
                    ];
                    if let Some(r) = rejected {
                        args.push((
                            "rejected",
                            obj(vec![
                                ("from", u64_v(r.from as u64)),
                                ("to", u64_v(r.to as u64)),
                                ("old_perf", f64_v(r.old_perf)),
                                ("new_perf", f64_v(r.new_perf)),
                                ("payback", r.payback.map(f64_v).unwrap_or(Value::Null)),
                            ]),
                        ));
                    }
                    let verb = if admitted.is_empty() { "hold" } else { "swap" };
                    events.push(instant(
                        format!("decision iter {iter}: {verb}"),
                        "decision",
                        pid,
                        MANAGER_TID,
                        *t,
                        Some(obj(args)),
                    ));
                }
                TraceEvent::SwapExec {
                    t,
                    iter,
                    from,
                    to,
                    bytes,
                    transfer_secs,
                } => {
                    let (from_t, to_t) = (*from as u64, *to as u64);
                    host_track(from_t, &mut events);
                    host_track(to_t, &mut events);
                    events.push(slice(
                        format!("swap {from}->{to}"),
                        "swap",
                        pid,
                        MANAGER_TID,
                        *t,
                        *t + *transfer_secs,
                        Some(obj(vec![
                            ("iter", u64_v(*iter as u64)),
                            ("bytes", f64_v(*bytes)),
                        ])),
                    ));
                    events.push(flow("s", flow_id, pid, from_t, *t));
                    events.push(flow("f", flow_id, pid, to_t, *t + *transfer_secs));
                    flow_id += 1;
                }
                TraceEvent::Checkpoint {
                    t,
                    iter,
                    bytes,
                    pause_secs,
                } => {
                    events.push(slice(
                        format!("checkpoint iter {iter}"),
                        "checkpoint",
                        pid,
                        MANAGER_TID,
                        *t,
                        *t + *pause_secs,
                        Some(obj(vec![("bytes", f64_v(*bytes))])),
                    ));
                }
                TraceEvent::MsgSend {
                    t,
                    from,
                    to,
                    tag,
                    bytes,
                } => {
                    let from_t = *from as u64;
                    host_track(from_t, &mut events);
                    events.push(instant(
                        format!("send tag {tag} -> {to}"),
                        "msg",
                        pid,
                        from_t,
                        *t,
                        Some(obj(vec![("bytes", u64_v(*bytes as u64))])),
                    ));
                }
                TraceEvent::MsgRecv {
                    t0,
                    t1,
                    to,
                    from,
                    tag,
                    bytes,
                } => {
                    let to_t = *to as u64;
                    host_track(to_t, &mut events);
                    events.push(slice(
                        format!("recv tag {tag} <- {from}"),
                        "msg",
                        pid,
                        to_t,
                        *t0,
                        *t1,
                        Some(obj(vec![("bytes", u64_v(*bytes as u64))])),
                    ));
                }
                TraceEvent::Collective { t0, t1, slot, op } => {
                    let slot_t = *slot as u64;
                    host_track(slot_t, &mut events);
                    events.push(slice(op.clone(), "collective", pid, slot_t, *t0, *t1, None));
                }
                TraceEvent::ProtocolMsg {
                    queued,
                    start,
                    end,
                    step,
                    bytes,
                } => {
                    if !link_named {
                        link_named = true;
                        events.push(metadata("thread_name", pid, LINK_TID, "link".into()));
                    }
                    events.push(slice(
                        step.key().to_string(),
                        "protocol",
                        pid,
                        LINK_TID,
                        *start,
                        *end,
                        Some(obj(vec![
                            ("queued", f64_v(*queued)),
                            ("queue_wait", f64_v(start - queued)),
                            ("bytes", f64_v(*bytes)),
                        ])),
                    ));
                }
                TraceEvent::ProtocolCompute { t0, t1 } => {
                    events.push(slice(
                        "decision compute".into(),
                        "protocol",
                        pid,
                        MANAGER_TID,
                        *t0,
                        *t1,
                        None,
                    ));
                }
                TraceEvent::ProtocolQueueDepth { t, depth } => {
                    events.push(obj(vec![
                        ("name", str_v("link queue")),
                        ("cat", str_v("protocol")),
                        ("ph", str_v("C")),
                        ("ts", us(*t)),
                        ("pid", u64_v(pid)),
                        ("args", obj(vec![("depth", u64_v(*depth as u64))])),
                    ]));
                }
                TraceEvent::FaultInjected {
                    t,
                    host,
                    fault,
                    duration_secs,
                    factor,
                } => {
                    // Host faults land on the host's track; link-level
                    // faults (host None) on the shared-link track.
                    let tid = match host {
                        Some(h) => {
                            let h = *h as u64;
                            host_track(h, &mut events);
                            h
                        }
                        None => {
                            if !link_named {
                                link_named = true;
                                events.push(metadata("thread_name", pid, LINK_TID, "link".into()));
                            }
                            LINK_TID
                        }
                    };
                    let mut args = vec![(
                        "duration_secs",
                        duration_secs.map(f64_v).unwrap_or(Value::Null),
                    )];
                    if let Some(f) = factor {
                        args.push(("factor", f64_v(*f)));
                    }
                    match duration_secs {
                        // Bounded faults (blackouts, degraded windows)
                        // draw as slices so the outage span is visible
                        // under the compute it stalls.
                        Some(d) => events.push(slice(
                            format!("fault: {}", fault.key()),
                            "fault",
                            pid,
                            tid,
                            *t,
                            *t + *d,
                            Some(obj(args)),
                        )),
                        // A permanent crash is an instant — the track
                        // simply goes quiet afterwards.
                        None => events.push(instant(
                            format!("fault: {}", fault.key()),
                            "fault",
                            pid,
                            tid,
                            *t,
                            Some(obj(args)),
                        )),
                    }
                }
                TraceEvent::FailureDetected {
                    t,
                    host,
                    iter,
                    cause,
                    detail,
                } => {
                    let h = *host as u64;
                    host_track(h, &mut events);
                    let mut args = vec![("cause", str_v(cause.key()))];
                    if let Some(i) = iter {
                        args.push(("iter", u64_v(*i as u64)));
                    }
                    if let Some(d) = detail {
                        args.push(("detail", str_v(d.clone())));
                    }
                    events.push(instant(
                        format!("failure: {}", cause.key()),
                        "fault",
                        pid,
                        h,
                        *t,
                        Some(obj(args)),
                    ));
                }
                TraceEvent::RecoveryComplete {
                    t,
                    host,
                    replacement,
                    action,
                    pause_secs,
                } => {
                    let mut args = vec![
                        ("host", u64_v(*host as u64)),
                        (
                            "replacement",
                            replacement.map(|r| u64_v(r as u64)).unwrap_or(Value::Null),
                        ),
                    ];
                    args.push(("action", str_v(action.key())));
                    // `t` is the completion time; the slice spans the
                    // pause leading up to it.
                    events.push(slice(
                        match replacement {
                            Some(r) => format!("recovery {host}->{r} ({})", action.key()),
                            None => format!("recovery host {host} ({})", action.key()),
                        },
                        "fault",
                        pid,
                        MANAGER_TID,
                        (*t - *pause_secs).max(0.0),
                        *t,
                        Some(obj(args)),
                    ));
                }
                TraceEvent::PolicyDecision {
                    t,
                    policy,
                    failed,
                    chosen,
                    ranked,
                } => {
                    let args = vec![
                        ("policy", str_v(policy.clone())),
                        ("failed", u64_v(*failed as u64)),
                        (
                            "chosen",
                            chosen.map(|c| u64_v(c as u64)).unwrap_or(Value::Null),
                        ),
                        (
                            "ranked",
                            Value::Seq(ranked.iter().map(|&h| u64_v(h as u64)).collect()),
                        ),
                    ];
                    events.push(instant(
                        format!("placement: {policy}"),
                        "policy",
                        pid,
                        MANAGER_TID,
                        *t,
                        Some(obj(args)),
                    ));
                }
            }
        }
    }

    let root = obj(vec![
        ("traceEvents", Value::Seq(events)),
        ("displayTimeUnit", str_v("ms")),
    ]);
    serde_json::to_string(&root).expect("chrome trace serializes")
}

/// Structural validation of Chrome trace JSON: parses the text, checks
/// the `traceEvents` array, and that every event carries the fields the
/// format requires (`ph`/`pid`/`name`, `ts` for non-metadata phases).
/// Returns the event count.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let root: Value = serde_json::from_str(text).map_err(|e| format!("not JSON: {e}"))?;
    let Value::Map(fields) = root else {
        return Err("top level is not an object".into());
    };
    let events = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing traceEvents")?;
    let Value::Seq(events) = events else {
        return Err("traceEvents is not an array".into());
    };
    for (i, e) in events.iter().enumerate() {
        let Value::Map(fields) = e else {
            return Err(format!("event {i} is not an object"));
        };
        let get = |k: &str| fields.iter().find(|(f, _)| f == k).map(|(_, v)| v);
        let ph = match get("ph") {
            Some(Value::Str(s)) if !s.is_empty() => s.clone(),
            _ => return Err(format!("event {i} has no ph")),
        };
        for key in ["name", "pid"] {
            if get(key).is_none() {
                return Err(format!("event {i} ({ph}) missing {key}"));
            }
        }
        if ph != "M" && !matches!(get("ts"), Some(Value::Num(_))) {
            return Err(format!("event {i} ({ph}) missing numeric ts"));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    fn sample_bundle() -> TraceBundle {
        let mut b = TraceBundle::new();
        b.push(
            "swap/greedy",
            7,
            Trace {
                events: vec![
                    TraceEvent::ComputeSpan {
                        host: 0,
                        iter: 0,
                        start: 0.0,
                        end: 10.0,
                    },
                    TraceEvent::IterEnd {
                        t: 11.0,
                        iter: 0,
                        compute_end: 10.0,
                    },
                    TraceEvent::SwapExec {
                        t: 11.0,
                        iter: 0,
                        from: 0,
                        to: 2,
                        bytes: 1e6,
                        transfer_secs: 0.5,
                    },
                    TraceEvent::LoadChange {
                        t: 3.0,
                        host: 0,
                        competing: 1.0,
                    },
                ],
            },
        );
        b
    }

    #[test]
    fn chrome_trace_validates_and_has_tracks() {
        let text = to_chrome_trace(&sample_bundle());
        let n = validate_chrome_trace(&text).unwrap();
        assert!(n >= 7, "expected metadata + events, got {n}");
        assert!(text.contains("\"process_name\""));
        assert!(text.contains("swap/greedy (seed 7)"));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ph\":\"C\""));
        // One flow arrow pair for the swap.
        assert!(text.contains("\"ph\":\"s\""));
        assert!(text.contains("\"ph\":\"f\""));
    }

    #[test]
    fn validator_rejects_broken_events() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{}]}").is_err());
        assert!(validate_chrome_trace(
            "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"a\",\"pid\":0}]}"
        )
        .is_err()); // missing ts
        assert_eq!(validate_chrome_trace("{\"traceEvents\":[]}"), Ok(0));
    }

    #[test]
    fn protocol_events_land_on_the_link_and_manager_tracks() {
        use crate::event::ProtocolStep;
        let mut b = TraceBundle::new();
        b.push(
            "protocol",
            0,
            Trace {
                events: vec![
                    TraceEvent::ProtocolMsg {
                        queued: 0.0,
                        start: 0.0,
                        end: 0.01,
                        step: ProtocolStep::Report,
                        bytes: 256.0,
                    },
                    TraceEvent::ProtocolQueueDepth { t: 0.0, depth: 1 },
                    TraceEvent::ProtocolCompute {
                        t0: 0.01,
                        t1: 0.011,
                    },
                ],
            },
        );
        let text = to_chrome_trace(&b);
        validate_chrome_trace(&text).unwrap();
        assert!(text.contains("\"report\""), "{text}");
        assert!(text.contains("\"link\""), "{text}");
        assert!(text.contains("\"decision compute\""), "{text}");
        assert!(text.contains("\"link queue\""), "{text}");
        assert!(text.contains(&format!("\"tid\":{LINK_TID}")), "{text}");
    }

    #[test]
    fn output_is_deterministic() {
        let b = sample_bundle();
        assert_eq!(to_chrome_trace(&b), to_chrome_trace(&b));
    }
}
