//! Counters and histograms derived from traces.
//!
//! `BTreeMap` keys keep every export deterministic: same trace bundle →
//! same JSON bytes, same text table.

use crate::event::TraceEvent;
use crate::trace::TraceBundle;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Summary statistics over observed samples.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    /// Counts per power-of-two bucket of the sample value: bucket `i`
    /// holds samples in `[2^(i-64), 2^(i-63))` seconds (i.e. the
    /// exponent is offset so sub-second samples still land in range);
    /// sparse, keyed by bucket index.
    pub buckets: BTreeMap<String, u64>,
}

impl Histogram {
    pub fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let bucket = if v > 0.0 && v.is_finite() {
            // log2 bucket, clamped to a printable range.
            (v.log2().floor() as i64).clamp(-64, 63)
        } else {
            -64
        };
        *self.buckets.entry(format!("{bucket}")).or_insert(0) += 1;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket-interpolated quantile estimate (`q` clamped to `[0, 1]`):
    /// walks the power-of-two buckets in numeric order until the
    /// cumulative count reaches `q × count`, then interpolates linearly
    /// inside the bucket's `[2^i, 2^(i+1))` range. The estimate is
    /// clamped to the observed `[min, max]`, so single-sample and
    /// single-bucket histograms report exact values at the extremes.
    /// Returns `None` for an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        // BTreeMap<String> orders lexicographically ("-1" < "-64"), so
        // re-sort by the parsed exponent.
        let mut buckets: Vec<(i64, u64)> = self
            .buckets
            .iter()
            .map(|(k, &n)| (k.parse().unwrap_or(-64), n))
            .collect();
        buckets.sort_unstable_by_key(|&(i, _)| i);
        let mut cum = 0u64;
        for (i, n) in buckets {
            if (cum + n) as f64 >= target {
                let lo = (i as f64).exp2();
                let hi = ((i + 1) as f64).exp2();
                let frac = if n == 0 {
                    0.0
                } else {
                    ((target - cum as f64) / n as f64).clamp(0.0, 1.0)
                };
                return Some((lo + frac * (hi - lo)).clamp(self.min, self.max));
            }
            cum += n;
        }
        Some(self.max)
    }
}

/// The metrics registry: named counters and histograms.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    pub fn new() -> Self {
        Metrics::default()
    }

    pub fn incr(&mut self, key: &str, by: u64) {
        *self.counters.entry(key.to_string()).or_insert(0) += by;
    }

    pub fn observe(&mut self, key: &str, v: f64) {
        self.histograms
            .entry(key.to_string())
            .or_default()
            .observe(v);
    }

    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Derives the standard registry from a trace bundle:
    ///
    /// * `decisions` — swap-decision evaluations;
    /// * `swaps_attempted` — pairs admitted by the engine;
    /// * `swaps_committed` — exchanges actually executed;
    /// * `swaps_vetoed.<gate>` — decision points stopped by each gate
    ///   with no pair admitted;
    /// * `checkpoints`, `messages` — other event tallies;
    /// * `protocol_msgs`, `protocol_msgs.<step>`, `protocol_bytes` —
    ///   protocol-DES message traffic by round phase;
    /// * `faults_injected`, `faults_injected.<kind>`,
    ///   `failures_detected`, `failures_detected.<cause>`, `recoveries`,
    ///   `recoveries.<action>` — fault-injection tallies, plus the
    ///   `recovery_pause_secs` histogram of time lost to each recovery;
    /// * `policy_decisions`, `policy_decisions.<policy>` — placement
    ///   rankings made by the policy layer;
    /// * histograms `iter_time/<label>`, `payback`, `swap_transfer_secs`,
    ///   `decision_latency_sim_secs` (time from iteration end to the
    ///   decision's timestamp — zero in the discrete simulator, nonzero
    ///   under the minimpi runtime's virtual clock), and the protocol
    ///   histograms `protocol_msg_secs`, `protocol_queue_wait_secs`,
    ///   `protocol_decision_compute_secs`, `protocol_queue_depth`.
    pub fn from_bundle(bundle: &TraceBundle) -> Self {
        let mut m = Metrics::new();
        for run in &bundle.runs {
            let mut last_iter_end: Option<f64> = None;
            let mut prev_end = 0.0f64;
            for e in &run.trace.events {
                match e {
                    TraceEvent::IterEnd { t, .. } => {
                        m.observe(&format!("iter_time/{}", run.label), t - prev_end);
                        prev_end = *t;
                        last_iter_end = Some(*t);
                    }
                    TraceEvent::SwapDecision {
                        t,
                        admitted,
                        stopped_because,
                        ..
                    } => {
                        m.incr("decisions", 1);
                        m.incr("swaps_attempted", admitted.len() as u64);
                        if admitted.is_empty() {
                            m.incr(&format!("swaps_vetoed.{}", stopped_because.key()), 1);
                        }
                        for pair in admitted {
                            m.observe("payback", pair.payback);
                        }
                        if let Some(end) = last_iter_end {
                            m.observe("decision_latency_sim_secs", t - end);
                        }
                    }
                    TraceEvent::SwapExec {
                        bytes,
                        transfer_secs,
                        ..
                    } => {
                        m.incr("swaps_committed", 1);
                        m.incr("swap_bytes_moved", *bytes as u64);
                        m.observe("swap_transfer_secs", *transfer_secs);
                    }
                    TraceEvent::Checkpoint {
                        bytes, pause_secs, ..
                    } => {
                        m.incr("checkpoints", 1);
                        m.incr("checkpoint_bytes_moved", *bytes as u64);
                        m.observe("checkpoint_pause_secs", *pause_secs);
                    }
                    TraceEvent::MsgSend { bytes, .. } => {
                        m.incr("messages", 1);
                        m.incr("message_bytes", *bytes as u64);
                    }
                    TraceEvent::Collective { t0, t1, .. } => {
                        m.incr("collectives", 1);
                        m.observe("collective_secs", t1 - t0);
                    }
                    TraceEvent::Probe { .. } => m.incr("probes", 1),
                    TraceEvent::LoadChange { .. } => m.incr("load_changes", 1),
                    TraceEvent::ProtocolMsg {
                        queued,
                        start,
                        end,
                        step,
                        bytes,
                    } => {
                        m.incr("protocol_msgs", 1);
                        m.incr(&format!("protocol_msgs.{}", step.key()), 1);
                        m.incr("protocol_bytes", *bytes as u64);
                        m.observe("protocol_msg_secs", end - start);
                        m.observe("protocol_queue_wait_secs", start - queued);
                    }
                    TraceEvent::ProtocolCompute { t0, t1 } => {
                        m.observe("protocol_decision_compute_secs", t1 - t0);
                    }
                    TraceEvent::ProtocolQueueDepth { depth, .. } => {
                        m.observe("protocol_queue_depth", *depth as f64);
                    }
                    TraceEvent::FaultInjected { fault, .. } => {
                        m.incr("faults_injected", 1);
                        m.incr(&format!("faults_injected.{}", fault.key()), 1);
                    }
                    TraceEvent::FailureDetected { cause, .. } => {
                        m.incr("failures_detected", 1);
                        m.incr(&format!("failures_detected.{}", cause.key()), 1);
                    }
                    TraceEvent::RecoveryComplete {
                        action, pause_secs, ..
                    } => {
                        m.incr("recoveries", 1);
                        m.incr(&format!("recoveries.{}", action.key()), 1);
                        m.observe("recovery_pause_secs", *pause_secs);
                    }
                    TraceEvent::PolicyDecision { policy, .. } => {
                        m.incr("policy_decisions", 1);
                        m.incr(&format!("policy_decisions.{policy}"), 1);
                    }
                    TraceEvent::IterStart { .. }
                    | TraceEvent::ComputeSpan { .. }
                    | TraceEvent::MsgRecv { .. } => {}
                }
            }
        }
        m
    }

    /// Renders a fixed-width text table (counters, then histograms).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("counters:\n");
        for (k, v) in &self.counters {
            out.push_str(&format!("  {k:<32} {v}\n"));
        }
        out.push_str("histograms:\n");
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "  {k:<32} n={} mean={:.6} p50={:.6} p95={:.6} min={:.6} max={:.6}\n",
                h.count,
                h.mean(),
                h.quantile(0.50).unwrap_or(0.0),
                h.quantile(0.95).unwrap_or(0.0),
                h.min,
                h.max
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;
    use swap_core::StopReason;

    fn bundle_with(events: Vec<TraceEvent>) -> TraceBundle {
        let mut b = TraceBundle::new();
        b.push("swap/greedy", 0, Trace { events });
        b
    }

    #[test]
    fn veto_counters_use_gate_keys() {
        let b = bundle_with(vec![
            TraceEvent::IterEnd {
                t: 10.0,
                iter: 0,
                compute_end: 9.0,
            },
            TraceEvent::SwapDecision {
                t: 10.0,
                iter: 0,
                old_iter_time: 10.0,
                swap_time: 1.0,
                app_improvement: 0.0,
                stopped_because: StopReason::PaybackGateFailed,
                admitted: vec![],
                rejected: None,
            },
        ]);
        let m = Metrics::from_bundle(&b);
        assert_eq!(m.counter("decisions"), 1);
        assert_eq!(m.counter("swaps_vetoed.payback_gate"), 1);
        assert_eq!(m.counter("swaps_committed"), 0);
        assert_eq!(m.histograms["iter_time/swap/greedy"].count, 1);
    }

    #[test]
    fn exec_and_checkpoint_tallies() {
        let b = bundle_with(vec![
            TraceEvent::SwapExec {
                t: 1.0,
                iter: 0,
                from: 0,
                to: 3,
                bytes: 1e6,
                transfer_secs: 0.5,
            },
            TraceEvent::Checkpoint {
                t: 2.0,
                iter: 1,
                bytes: 4e6,
                pause_secs: 2.0,
            },
        ]);
        let m = Metrics::from_bundle(&b);
        assert_eq!(m.counter("swaps_committed"), 1);
        assert_eq!(m.counter("swap_bytes_moved"), 1_000_000);
        assert_eq!(m.counter("checkpoints"), 1);
        assert!((m.histograms["swap_transfer_secs"].mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_tracks_extrema_and_buckets() {
        let mut h = Histogram::default();
        for v in [0.5, 2.0, 8.0] {
            h.observe(v);
        }
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 8.0);
        assert_eq!(h.buckets.get("-1"), Some(&1)); // 0.5 → 2^-1
        assert_eq!(h.buckets.get("1"), Some(&1)); // 2.0 → 2^1
        assert_eq!(h.buckets.get("3"), Some(&1)); // 8.0 → 2^3
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(0.95), None);
    }

    #[test]
    fn quantile_of_single_sample_is_that_sample() {
        let mut h = Histogram::default();
        h.observe(4.0);
        assert_eq!(h.quantile(0.0), Some(4.0));
        assert_eq!(h.quantile(0.5), Some(4.0));
        assert_eq!(h.quantile(1.0), Some(4.0));
    }

    #[test]
    fn quantile_is_monotone_and_brackets_the_samples() {
        let mut h = Histogram::default();
        for i in 1..=100 {
            h.observe(i as f64);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
        assert!((1.0..=100.0).contains(&p50));
        assert!((1.0..=100.0).contains(&p95));
        // The true p50 is ~50 and p95 ~95; bucket interpolation is
        // coarse (power-of-two buckets) but must land in the right
        // bucket's range.
        assert!((32.0..=64.0).contains(&p50), "p50 = {p50}");
        assert!((64.0..=100.0).contains(&p95), "p95 = {p95}");
    }

    #[test]
    fn quantile_orders_negative_exponent_buckets_numerically() {
        // "-1" < "-64" lexicographically; quantile must not be fooled.
        let mut h = Histogram::default();
        for v in [1e-10, 0.25, 0.5] {
            h.observe(v);
        }
        let p0 = h.quantile(0.01).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p0 <= p99);
        assert!(p0 < 0.25, "lowest quantile must come from the tiny sample");
    }

    #[test]
    fn protocol_events_produce_counters_and_histograms() {
        use crate::event::ProtocolStep;
        let b = bundle_with(vec![
            TraceEvent::ProtocolMsg {
                queued: 0.0,
                start: 0.0,
                end: 0.1,
                step: ProtocolStep::Report,
                bytes: 256.0,
            },
            TraceEvent::ProtocolMsg {
                queued: 0.0,
                start: 0.1,
                end: 0.2,
                step: ProtocolStep::StateTransfer,
                bytes: 1e6,
            },
            TraceEvent::ProtocolCompute { t0: 0.2, t1: 0.3 },
            TraceEvent::ProtocolQueueDepth { t: 0.0, depth: 2 },
        ]);
        let m = Metrics::from_bundle(&b);
        assert_eq!(m.counter("protocol_msgs"), 2);
        assert_eq!(m.counter("protocol_msgs.report"), 1);
        assert_eq!(m.counter("protocol_msgs.state_transfer"), 1);
        assert_eq!(m.counter("protocol_bytes"), 1_000_256);
        assert_eq!(m.histograms["protocol_msg_secs"].count, 2);
        assert_eq!(m.histograms["protocol_queue_wait_secs"].count, 2);
        assert!((m.histograms["protocol_decision_compute_secs"].mean() - 0.1).abs() < 1e-12);
        assert_eq!(m.histograms["protocol_queue_depth"].max, 2.0);
        // Render surfaces the quantile columns.
        assert!(m.render().contains("p50="), "{}", m.render());
    }

    #[test]
    fn fault_events_produce_counters_and_pause_histogram() {
        use crate::event::{FailureCause, FaultKind, RecoveryAction};
        let b = bundle_with(vec![
            TraceEvent::FaultInjected {
                t: 10.0,
                host: Some(2),
                fault: FaultKind::Crash,
                duration_secs: None,
                factor: None,
            },
            TraceEvent::FaultInjected {
                t: 20.0,
                host: None,
                fault: FaultKind::LinkDegraded,
                duration_secs: Some(5.0),
                factor: Some(0.25),
            },
            TraceEvent::FailureDetected {
                t: 12.0,
                host: 2,
                iter: Some(3),
                cause: FailureCause::InjectedCrash,
                detail: None,
            },
            TraceEvent::RecoveryComplete {
                t: 14.0,
                host: 2,
                replacement: Some(7),
                action: RecoveryAction::SpareSwap,
                pause_secs: 2.0,
            },
        ]);
        let m = Metrics::from_bundle(&b);
        assert_eq!(m.counter("faults_injected"), 2);
        assert_eq!(m.counter("faults_injected.crash"), 1);
        assert_eq!(m.counter("faults_injected.link_degraded"), 1);
        assert_eq!(m.counter("failures_detected"), 1);
        assert_eq!(m.counter("failures_detected.injected_crash"), 1);
        assert_eq!(m.counter("recoveries"), 1);
        assert_eq!(m.counter("recoveries.spare_swap"), 1);
        assert!((m.histograms["recovery_pause_secs"].mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn render_is_deterministic_and_json_round_trips() {
        let b = bundle_with(vec![TraceEvent::Probe {
            t: 0.0,
            host: 1,
            rate: 2.0,
        }]);
        let m = Metrics::from_bundle(&b);
        assert_eq!(m.render(), Metrics::from_bundle(&b).render());
        let json = serde_json::to_string(&m).unwrap();
        let back: Metrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
