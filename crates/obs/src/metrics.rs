//! Counters and histograms derived from traces.
//!
//! `BTreeMap` keys keep every export deterministic: same trace bundle →
//! same JSON bytes, same text table.

use crate::event::TraceEvent;
use crate::trace::TraceBundle;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Summary statistics over observed samples.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    /// Counts per power-of-two bucket of the sample value: bucket `i`
    /// holds samples in `[2^(i-64), 2^(i-63))` seconds (i.e. the
    /// exponent is offset so sub-second samples still land in range);
    /// sparse, keyed by bucket index.
    pub buckets: BTreeMap<String, u64>,
}

impl Histogram {
    pub fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let bucket = if v > 0.0 && v.is_finite() {
            // log2 bucket, clamped to a printable range.
            (v.log2().floor() as i64).clamp(-64, 63)
        } else {
            -64
        };
        *self.buckets.entry(format!("{bucket}")).or_insert(0) += 1;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// The metrics registry: named counters and histograms.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    pub fn new() -> Self {
        Metrics::default()
    }

    pub fn incr(&mut self, key: &str, by: u64) {
        *self.counters.entry(key.to_string()).or_insert(0) += by;
    }

    pub fn observe(&mut self, key: &str, v: f64) {
        self.histograms
            .entry(key.to_string())
            .or_default()
            .observe(v);
    }

    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Derives the standard registry from a trace bundle:
    ///
    /// * `decisions` — swap-decision evaluations;
    /// * `swaps_attempted` — pairs admitted by the engine;
    /// * `swaps_committed` — exchanges actually executed;
    /// * `swaps_vetoed.<gate>` — decision points stopped by each gate
    ///   with no pair admitted;
    /// * `checkpoints`, `messages` — other event tallies;
    /// * histograms `iter_time/<label>`, `payback`, `swap_transfer_secs`,
    ///   `decision_latency_sim_secs` (time from iteration end to the
    ///   decision's timestamp — zero in the discrete simulator, nonzero
    ///   under the minimpi runtime's virtual clock).
    pub fn from_bundle(bundle: &TraceBundle) -> Self {
        let mut m = Metrics::new();
        for run in &bundle.runs {
            let mut last_iter_end: Option<f64> = None;
            let mut prev_end = 0.0f64;
            for e in &run.trace.events {
                match e {
                    TraceEvent::IterEnd { t, .. } => {
                        m.observe(&format!("iter_time/{}", run.label), t - prev_end);
                        prev_end = *t;
                        last_iter_end = Some(*t);
                    }
                    TraceEvent::SwapDecision {
                        t,
                        admitted,
                        stopped_because,
                        ..
                    } => {
                        m.incr("decisions", 1);
                        m.incr("swaps_attempted", admitted.len() as u64);
                        if admitted.is_empty() {
                            m.incr(&format!("swaps_vetoed.{}", stopped_because.key()), 1);
                        }
                        for pair in admitted {
                            m.observe("payback", pair.payback);
                        }
                        if let Some(end) = last_iter_end {
                            m.observe("decision_latency_sim_secs", t - end);
                        }
                    }
                    TraceEvent::SwapExec {
                        bytes,
                        transfer_secs,
                        ..
                    } => {
                        m.incr("swaps_committed", 1);
                        m.incr("swap_bytes_moved", *bytes as u64);
                        m.observe("swap_transfer_secs", *transfer_secs);
                    }
                    TraceEvent::Checkpoint {
                        bytes, pause_secs, ..
                    } => {
                        m.incr("checkpoints", 1);
                        m.incr("checkpoint_bytes_moved", *bytes as u64);
                        m.observe("checkpoint_pause_secs", *pause_secs);
                    }
                    TraceEvent::MsgSend { bytes, .. } => {
                        m.incr("messages", 1);
                        m.incr("message_bytes", *bytes as u64);
                    }
                    TraceEvent::Collective { t0, t1, .. } => {
                        m.incr("collectives", 1);
                        m.observe("collective_secs", t1 - t0);
                    }
                    TraceEvent::Probe { .. } => m.incr("probes", 1),
                    TraceEvent::LoadChange { .. } => m.incr("load_changes", 1),
                    TraceEvent::IterStart { .. }
                    | TraceEvent::ComputeSpan { .. }
                    | TraceEvent::MsgRecv { .. } => {}
                }
            }
        }
        m
    }

    /// Renders a fixed-width text table (counters, then histograms).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("counters:\n");
        for (k, v) in &self.counters {
            out.push_str(&format!("  {k:<32} {v}\n"));
        }
        out.push_str("histograms:\n");
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "  {k:<32} n={} mean={:.6} min={:.6} max={:.6}\n",
                h.count,
                h.mean(),
                h.min,
                h.max
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;
    use swap_core::StopReason;

    fn bundle_with(events: Vec<TraceEvent>) -> TraceBundle {
        let mut b = TraceBundle::new();
        b.push("swap/greedy", 0, Trace { events });
        b
    }

    #[test]
    fn veto_counters_use_gate_keys() {
        let b = bundle_with(vec![
            TraceEvent::IterEnd {
                t: 10.0,
                iter: 0,
                compute_end: 9.0,
            },
            TraceEvent::SwapDecision {
                t: 10.0,
                iter: 0,
                old_iter_time: 10.0,
                swap_time: 1.0,
                app_improvement: 0.0,
                stopped_because: StopReason::PaybackGateFailed,
                admitted: vec![],
                rejected: None,
            },
        ]);
        let m = Metrics::from_bundle(&b);
        assert_eq!(m.counter("decisions"), 1);
        assert_eq!(m.counter("swaps_vetoed.payback_gate"), 1);
        assert_eq!(m.counter("swaps_committed"), 0);
        assert_eq!(m.histograms["iter_time/swap/greedy"].count, 1);
    }

    #[test]
    fn exec_and_checkpoint_tallies() {
        let b = bundle_with(vec![
            TraceEvent::SwapExec {
                t: 1.0,
                iter: 0,
                from: 0,
                to: 3,
                bytes: 1e6,
                transfer_secs: 0.5,
            },
            TraceEvent::Checkpoint {
                t: 2.0,
                iter: 1,
                bytes: 4e6,
                pause_secs: 2.0,
            },
        ]);
        let m = Metrics::from_bundle(&b);
        assert_eq!(m.counter("swaps_committed"), 1);
        assert_eq!(m.counter("swap_bytes_moved"), 1_000_000);
        assert_eq!(m.counter("checkpoints"), 1);
        assert!((m.histograms["swap_transfer_secs"].mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_tracks_extrema_and_buckets() {
        let mut h = Histogram::default();
        for v in [0.5, 2.0, 8.0] {
            h.observe(v);
        }
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 8.0);
        assert_eq!(h.buckets.get("-1"), Some(&1)); // 0.5 → 2^-1
        assert_eq!(h.buckets.get("1"), Some(&1)); // 2.0 → 2^1
        assert_eq!(h.buckets.get("3"), Some(&1)); // 8.0 → 2^3
    }

    #[test]
    fn render_is_deterministic_and_json_round_trips() {
        let b = bundle_with(vec![TraceEvent::Probe {
            t: 0.0,
            host: 1,
            rate: 2.0,
        }]);
        let m = Metrics::from_bundle(&b);
        assert_eq!(m.render(), Metrics::from_bundle(&b).render());
        let json = serde_json::to_string(&m).unwrap();
        let back: Metrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
