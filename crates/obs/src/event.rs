//! The typed event model.
//!
//! All timestamps are in *simulated* seconds for simulator-side events
//! (deterministic across thread counts) and in virtual seconds for
//! minimpi runtime events (wall clock × time compression, so those
//! traces are faithful but not bit-reproducible). The `kind` tag keeps
//! the JSONL self-describing.

use serde::{Deserialize, Serialize};
use swap_core::{RejectedSwap, StopReason, SwapPair};

/// One trace event. Field names are part of the JSONL schema.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum TraceEvent {
    /// An application iteration began on the listed active hosts.
    IterStart {
        t: f64,
        iter: usize,
        active: Vec<usize>,
    },
    /// One process's compute phase on `host` during `iter`.
    ComputeSpan {
        host: usize,
        iter: usize,
        start: f64,
        end: f64,
    },
    /// The iteration (compute + communication) completed.
    IterEnd {
        t: f64,
        iter: usize,
        compute_end: f64,
    },
    /// A spare processor answered a performance probe.
    Probe { t: f64, host: usize, rate: f64 },
    /// External (competing) load on `host` changed.
    LoadChange { t: f64, host: usize, competing: f64 },
    /// The decision engine evaluated a swap at an iteration boundary.
    /// Records the full payback inputs: the measured iteration time, the
    /// modeled swap time, every admitted pair (with `old_perf`,
    /// `new_perf`, payback distance and per-process gain), the first
    /// refused candidate, and which gate stopped the round.
    SwapDecision {
        t: f64,
        iter: usize,
        old_iter_time: f64,
        swap_time: f64,
        app_improvement: f64,
        stopped_because: StopReason,
        admitted: Vec<SwapPair>,
        rejected: Option<RejectedSwap>,
    },
    /// One admitted exchange was carried out.
    SwapExec {
        t: f64,
        iter: usize,
        from: usize,
        to: usize,
        bytes: f64,
        transfer_secs: f64,
    },
    /// A checkpoint/restart cycle (the CR strategy's adaptation).
    Checkpoint {
        t: f64,
        iter: usize,
        bytes: f64,
        pause_secs: f64,
    },
    /// minimpi point-to-point send (application tags only).
    MsgSend {
        t: f64,
        from: usize,
        to: usize,
        tag: u32,
        bytes: usize,
    },
    /// minimpi point-to-point receive completion; `t0` is when the
    /// receiver started waiting, `t1` when the message was consumed.
    MsgRecv {
        t0: f64,
        t1: f64,
        to: usize,
        from: usize,
        tag: u32,
        bytes: usize,
    },
    /// A top-level minimpi collective as seen by one slot.
    Collective {
        t0: f64,
        t1: f64,
        slot: usize,
        op: String,
    },
}

impl TraceEvent {
    /// The event's primary timestamp (start time for spans), used for
    /// ordering checks and exporter bookkeeping.
    pub fn time(&self) -> f64 {
        match self {
            TraceEvent::IterStart { t, .. }
            | TraceEvent::IterEnd { t, .. }
            | TraceEvent::Probe { t, .. }
            | TraceEvent::LoadChange { t, .. }
            | TraceEvent::SwapDecision { t, .. }
            | TraceEvent::SwapExec { t, .. }
            | TraceEvent::Checkpoint { t, .. }
            | TraceEvent::MsgSend { t, .. } => *t,
            TraceEvent::ComputeSpan { start, .. } => *start,
            TraceEvent::MsgRecv { t0, .. } | TraceEvent::Collective { t0, .. } => *t0,
        }
    }

    /// Stable schema tag, matching the serialized `kind` field.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::IterStart { .. } => "iter_start",
            TraceEvent::ComputeSpan { .. } => "compute_span",
            TraceEvent::IterEnd { .. } => "iter_end",
            TraceEvent::Probe { .. } => "probe",
            TraceEvent::LoadChange { .. } => "load_change",
            TraceEvent::SwapDecision { .. } => "swap_decision",
            TraceEvent::SwapExec { .. } => "swap_exec",
            TraceEvent::Checkpoint { .. } => "checkpoint",
            TraceEvent::MsgSend { .. } => "msg_send",
            TraceEvent::MsgRecv { .. } => "msg_recv",
            TraceEvent::Collective { .. } => "collective",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            TraceEvent::IterStart {
                t: 0.0,
                iter: 0,
                active: vec![0, 3],
            },
            TraceEvent::SwapDecision {
                t: 12.5,
                iter: 1,
                old_iter_time: 12.5,
                swap_time: 3.0,
                app_improvement: 0.25,
                stopped_because: StopReason::Exhausted,
                admitted: vec![SwapPair {
                    from: 0,
                    to: 5,
                    old_perf: 1e8,
                    new_perf: 2e8,
                    payback: 0.48,
                    process_improvement: 1.0,
                }],
                rejected: None,
            },
            TraceEvent::MsgRecv {
                t0: 1.0,
                t1: 1.5,
                to: 2,
                from: 0,
                tag: 7,
                bytes: 1024,
            },
        ];
        for e in events {
            let json = serde_json::to_string(&e).unwrap();
            assert!(
                json.contains(&format!("\"kind\":\"{}\"", e.kind())),
                "{json}"
            );
            let back: TraceEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn rejected_candidate_serializes_inside_decision() {
        let e = TraceEvent::SwapDecision {
            t: 1.0,
            iter: 0,
            old_iter_time: 10.0,
            swap_time: 100.0,
            app_improvement: 0.0,
            stopped_because: StopReason::PaybackGateFailed,
            admitted: vec![],
            rejected: Some(RejectedSwap {
                from: 1,
                to: 4,
                old_perf: 1e8,
                new_perf: 2e8,
                process_improvement: 1.0,
                payback: Some(20.0),
            }),
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
