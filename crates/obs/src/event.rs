//! The typed event model.
//!
//! All timestamps are in *simulated* seconds for simulator-side events
//! (deterministic across thread counts) and in virtual seconds for
//! minimpi runtime events (wall clock × time compression, so those
//! traces are faithful but not bit-reproducible). The `kind` tag keeps
//! the JSONL self-describing.

use serde::{Deserialize, Serialize};
use swap_core::{RejectedSwap, StopReason, SwapPair};

/// Which protocol message a [`TraceEvent::ProtocolMsg`] carries — the
/// phases of one swap-runtime decision round (§3 of the paper), in
/// round order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ProtocolStep {
    /// Active handler → manager: periodic performance report (phase 1).
    Report,
    /// Manager → spare handler: probe request (phase 2).
    ProbeRequest,
    /// Spare handler → manager: probe reply (phase 2).
    ProbeReply,
    /// Manager → affected handler: swap directive (phase 4).
    Directive,
    /// Displaced handler → spare: process state transfer (phase 5).
    StateTransfer,
}

impl ProtocolStep {
    /// Every step, in protocol round order.
    pub const ALL: [ProtocolStep; 5] = [
        ProtocolStep::Report,
        ProtocolStep::ProbeRequest,
        ProtocolStep::ProbeReply,
        ProtocolStep::Directive,
        ProtocolStep::StateTransfer,
    ];

    /// Stable machine-readable key, matching the serialized form.
    pub fn key(&self) -> &'static str {
        match self {
            ProtocolStep::Report => "report",
            ProtocolStep::ProbeRequest => "probe_request",
            ProtocolStep::ProbeReply => "probe_reply",
            ProtocolStep::Directive => "directive",
            ProtocolStep::StateTransfer => "state_transfer",
        }
    }
}

/// Which fault class a [`TraceEvent::FaultInjected`] reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FaultKind {
    /// Permanent host crash — the host never comes back.
    Crash,
    /// Transient host blackout; the host resumes after repair.
    Blackout,
    /// Degraded-bandwidth window on the shared link.
    LinkDegraded,
    /// Permanent host death caused by a correlated rack shock (the
    /// domain-level storm killed it, not its independent crash draw).
    RackShock,
}

impl FaultKind {
    /// Stable machine-readable key, matching the serialized form.
    pub fn key(&self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Blackout => "blackout",
            FaultKind::LinkDegraded => "link_degraded",
            FaultKind::RackShock => "rack_shock",
        }
    }
}

/// Why a [`TraceEvent::FailureDetected`] fired — the audit output
/// distinguishes injected faults from genuine application panics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FailureCause {
    /// A crash scheduled by the fault plan.
    InjectedCrash,
    /// The application itself panicked on a worker.
    AppPanic,
}

impl FailureCause {
    /// Stable machine-readable key, matching the serialized form.
    pub fn key(&self) -> &'static str {
        match self {
            FailureCause::InjectedCrash => "injected_crash",
            FailureCause::AppPanic => "app_panic",
        }
    }
}

/// How a failure was absorbed, reported by
/// [`TraceEvent::RecoveryComplete`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum RecoveryAction {
    /// A mandatory swap moved the dead slot onto a spare host.
    SpareSwap,
    /// The run rolled back to its last checkpoint and restarted.
    Restart,
    /// No recovery path existed; the run aborted (and, for strategies
    /// that model resubmission, started over from scratch).
    Abort,
}

impl RecoveryAction {
    /// Stable machine-readable key, matching the serialized form.
    pub fn key(&self) -> &'static str {
        match self {
            RecoveryAction::SpareSwap => "spare_swap",
            RecoveryAction::Restart => "restart",
            RecoveryAction::Abort => "abort",
        }
    }
}

/// One trace event. Field names are part of the JSONL schema.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum TraceEvent {
    /// An application iteration began on the listed active hosts.
    IterStart {
        t: f64,
        iter: usize,
        active: Vec<usize>,
    },
    /// One process's compute phase on `host` during `iter`.
    ComputeSpan {
        host: usize,
        iter: usize,
        start: f64,
        end: f64,
    },
    /// The iteration (compute + communication) completed.
    IterEnd {
        t: f64,
        iter: usize,
        compute_end: f64,
    },
    /// A spare processor answered a performance probe.
    Probe { t: f64, host: usize, rate: f64 },
    /// External (competing) load on `host` changed.
    LoadChange { t: f64, host: usize, competing: f64 },
    /// The decision engine evaluated a swap at an iteration boundary.
    /// Records the full payback inputs: the measured iteration time, the
    /// modeled swap time, every admitted pair (with `old_perf`,
    /// `new_perf`, payback distance and per-process gain), the first
    /// refused candidate, and which gate stopped the round.
    SwapDecision {
        t: f64,
        iter: usize,
        old_iter_time: f64,
        swap_time: f64,
        app_improvement: f64,
        stopped_because: StopReason,
        admitted: Vec<SwapPair>,
        rejected: Option<RejectedSwap>,
    },
    /// One admitted exchange was carried out.
    SwapExec {
        t: f64,
        iter: usize,
        from: usize,
        to: usize,
        bytes: f64,
        transfer_secs: f64,
    },
    /// A checkpoint/restart cycle (the CR strategy's adaptation).
    Checkpoint {
        t: f64,
        iter: usize,
        bytes: f64,
        pause_secs: f64,
    },
    /// minimpi point-to-point send (application tags only).
    MsgSend {
        t: f64,
        from: usize,
        to: usize,
        tag: u32,
        bytes: usize,
    },
    /// minimpi point-to-point receive completion; `t0` is when the
    /// receiver started waiting, `t1` when the message was consumed.
    MsgRecv {
        t0: f64,
        t1: f64,
        to: usize,
        from: usize,
        tag: u32,
        bytes: usize,
    },
    /// A top-level minimpi collective as seen by one slot.
    Collective {
        t0: f64,
        t1: f64,
        slot: usize,
        op: String,
    },
    /// One control/data message of a protocol DES decision round,
    /// serialized over the shared link: handed to the link at `queued`,
    /// occupying it over `start..end`.
    ProtocolMsg {
        queued: f64,
        start: f64,
        end: f64,
        step: ProtocolStep,
        bytes: f64,
    },
    /// The manager's policy computation span in a protocol DES round
    /// (phase 3: all probe replies in → decision ready).
    ProtocolCompute { t0: f64, t1: f64 },
    /// Shared-link queue occupancy in a protocol DES round, sampled
    /// right after each message is enqueued (`depth` includes it).
    ProtocolQueueDepth { t: f64, depth: usize },
    /// A scheduled fault from the fault plan fired. `host` is `None` for
    /// link-level faults; `duration_secs` is `None` for permanent
    /// crashes; `factor` is the bandwidth multiplier of a degraded-link
    /// window.
    FaultInjected {
        t: f64,
        host: Option<usize>,
        fault: FaultKind,
        duration_secs: Option<f64>,
        factor: Option<f64>,
    },
    /// A failure became known globally (at the next collective for BSP
    /// executions — survivors reach the barrier and the dead slot never
    /// arrives). `detail` carries the panic message for `AppPanic`.
    FailureDetected {
        t: f64,
        host: usize,
        iter: Option<usize>,
        cause: FailureCause,
        detail: Option<String>,
    },
    /// The failure was absorbed and execution can proceed (or, for
    /// `Abort`, was formally given up). `replacement` names the spare a
    /// mandatory swap recovered onto.
    RecoveryComplete {
        t: f64,
        host: usize,
        replacement: Option<usize>,
        action: RecoveryAction,
        pause_secs: f64,
    },
    /// A placement policy ranked the spare candidates for a recovery.
    /// `ranked` lists every candidate host best-first (the policy's
    /// full ordering, so an audit can second-guess it); `chosen` is the
    /// spare actually taken (`None` when no spare was left).
    PolicyDecision {
        t: f64,
        policy: String,
        failed: usize,
        chosen: Option<usize>,
        ranked: Vec<usize>,
    },
}

impl TraceEvent {
    /// The event's primary timestamp (start time for spans), used for
    /// ordering checks and exporter bookkeeping.
    pub fn time(&self) -> f64 {
        match self {
            TraceEvent::IterStart { t, .. }
            | TraceEvent::IterEnd { t, .. }
            | TraceEvent::Probe { t, .. }
            | TraceEvent::LoadChange { t, .. }
            | TraceEvent::SwapDecision { t, .. }
            | TraceEvent::SwapExec { t, .. }
            | TraceEvent::Checkpoint { t, .. }
            | TraceEvent::MsgSend { t, .. }
            | TraceEvent::ProtocolQueueDepth { t, .. }
            | TraceEvent::FaultInjected { t, .. }
            | TraceEvent::FailureDetected { t, .. }
            | TraceEvent::RecoveryComplete { t, .. }
            | TraceEvent::PolicyDecision { t, .. } => *t,
            TraceEvent::ComputeSpan { start, .. } => *start,
            TraceEvent::MsgRecv { t0, .. }
            | TraceEvent::Collective { t0, .. }
            | TraceEvent::ProtocolCompute { t0, .. } => *t0,
            TraceEvent::ProtocolMsg { queued, .. } => *queued,
        }
    }

    /// Stable schema tag, matching the serialized `kind` field.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::IterStart { .. } => "iter_start",
            TraceEvent::ComputeSpan { .. } => "compute_span",
            TraceEvent::IterEnd { .. } => "iter_end",
            TraceEvent::Probe { .. } => "probe",
            TraceEvent::LoadChange { .. } => "load_change",
            TraceEvent::SwapDecision { .. } => "swap_decision",
            TraceEvent::SwapExec { .. } => "swap_exec",
            TraceEvent::Checkpoint { .. } => "checkpoint",
            TraceEvent::MsgSend { .. } => "msg_send",
            TraceEvent::MsgRecv { .. } => "msg_recv",
            TraceEvent::Collective { .. } => "collective",
            TraceEvent::ProtocolMsg { .. } => "protocol_msg",
            TraceEvent::ProtocolCompute { .. } => "protocol_compute",
            TraceEvent::ProtocolQueueDepth { .. } => "protocol_queue_depth",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::FailureDetected { .. } => "failure_detected",
            TraceEvent::RecoveryComplete { .. } => "recovery_complete",
            TraceEvent::PolicyDecision { .. } => "policy_decision",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            TraceEvent::IterStart {
                t: 0.0,
                iter: 0,
                active: vec![0, 3],
            },
            TraceEvent::SwapDecision {
                t: 12.5,
                iter: 1,
                old_iter_time: 12.5,
                swap_time: 3.0,
                app_improvement: 0.25,
                stopped_because: StopReason::Exhausted,
                admitted: vec![SwapPair {
                    from: 0,
                    to: 5,
                    old_perf: 1e8,
                    new_perf: 2e8,
                    payback: 0.48,
                    process_improvement: 1.0,
                }],
                rejected: None,
            },
            TraceEvent::MsgRecv {
                t0: 1.0,
                t1: 1.5,
                to: 2,
                from: 0,
                tag: 7,
                bytes: 1024,
            },
            TraceEvent::ProtocolMsg {
                queued: 0.0,
                start: 0.1,
                end: 0.2,
                step: ProtocolStep::ProbeReply,
                bytes: 256.0,
            },
            TraceEvent::ProtocolCompute { t0: 0.2, t1: 0.21 },
            TraceEvent::ProtocolQueueDepth { t: 0.0, depth: 3 },
            TraceEvent::FaultInjected {
                t: 120.0,
                host: Some(3),
                fault: FaultKind::Crash,
                duration_secs: None,
                factor: None,
            },
            TraceEvent::FaultInjected {
                t: 50.0,
                host: None,
                fault: FaultKind::LinkDegraded,
                duration_secs: Some(30.0),
                factor: Some(0.25),
            },
            TraceEvent::FailureDetected {
                t: 130.0,
                host: 3,
                iter: Some(7),
                cause: FailureCause::InjectedCrash,
                detail: None,
            },
            TraceEvent::FailureDetected {
                t: 9.0,
                host: 1,
                iter: None,
                cause: FailureCause::AppPanic,
                detail: Some("boom".to_owned()),
            },
            TraceEvent::RecoveryComplete {
                t: 147.0,
                host: 3,
                replacement: Some(17),
                action: RecoveryAction::SpareSwap,
                pause_secs: 16.7,
            },
            TraceEvent::FaultInjected {
                t: 80.0,
                host: Some(5),
                fault: FaultKind::RackShock,
                duration_secs: None,
                factor: None,
            },
            TraceEvent::PolicyDecision {
                t: 131.0,
                policy: "mtbf_aware".to_owned(),
                failed: 3,
                chosen: Some(17),
                ranked: vec![17, 21, 19],
            },
        ];
        for e in events {
            let json = serde_json::to_string(&e).unwrap();
            assert!(
                json.contains(&format!("\"kind\":\"{}\"", e.kind())),
                "{json}"
            );
            let back: TraceEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn rejected_candidate_serializes_inside_decision() {
        let e = TraceEvent::SwapDecision {
            t: 1.0,
            iter: 0,
            old_iter_time: 10.0,
            swap_time: 100.0,
            app_improvement: 0.0,
            stopped_because: StopReason::PaybackGateFailed,
            admitted: vec![],
            rejected: Some(RejectedSwap {
                from: 1,
                to: 4,
                old_perf: 1e8,
                new_perf: 2e8,
                process_improvement: 1.0,
                payback: Some(20.0),
            }),
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn protocol_steps_serialize_to_their_keys() {
        for step in ProtocolStep::ALL {
            let json = serde_json::to_string(&step).unwrap();
            assert_eq!(json, format!("\"{}\"", step.key()));
            let back: ProtocolStep = serde_json::from_str(&json).unwrap();
            assert_eq!(back, step);
        }
        let keys: std::collections::HashSet<_> =
            ProtocolStep::ALL.iter().map(|s| s.key()).collect();
        assert_eq!(keys.len(), ProtocolStep::ALL.len());
    }

    #[test]
    fn fault_enums_serialize_to_their_keys() {
        for (json, key) in [
            (serde_json::to_string(&FaultKind::Crash).unwrap(), "crash"),
            (
                serde_json::to_string(&FaultKind::LinkDegraded).unwrap(),
                "link_degraded",
            ),
            (
                serde_json::to_string(&FailureCause::InjectedCrash).unwrap(),
                "injected_crash",
            ),
            (
                serde_json::to_string(&FailureCause::AppPanic).unwrap(),
                "app_panic",
            ),
            (
                serde_json::to_string(&RecoveryAction::SpareSwap).unwrap(),
                "spare_swap",
            ),
            (
                serde_json::to_string(&RecoveryAction::Abort).unwrap(),
                "abort",
            ),
        ] {
            assert_eq!(json, format!("\"{key}\""));
        }
        assert_eq!(FaultKind::Blackout.key(), "blackout");
        assert_eq!(RecoveryAction::Restart.key(), "restart");
    }

    #[test]
    fn protocol_event_times_use_the_earliest_timestamp() {
        let msg = TraceEvent::ProtocolMsg {
            queued: 1.0,
            start: 2.0,
            end: 3.0,
            step: ProtocolStep::Report,
            bytes: 64.0,
        };
        assert_eq!(msg.time(), 1.0);
        assert_eq!(msg.kind(), "protocol_msg");
        let compute = TraceEvent::ProtocolCompute { t0: 4.0, t1: 5.0 };
        assert_eq!(compute.time(), 4.0);
        let depth = TraceEvent::ProtocolQueueDepth { t: 6.0, depth: 2 };
        assert_eq!(depth.time(), 6.0);
        assert_eq!(depth.kind(), "protocol_queue_depth");
    }
}
