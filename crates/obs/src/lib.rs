//! Deterministic tracing and metrics for the swap simulator.
//!
//! Every layer of the stack (simulator strategies, the parallel runner,
//! the minimpi runtime) can emit typed [`TraceEvent`]s into a
//! [`TraceSink`]. Events carry *simulated* time, so a simulator trace is
//! byte-identical no matter how many worker threads ran the
//! replications — the exporters only ever see the per-run event streams
//! in a deterministic (strategy × seed) order.
//!
//! The layer is zero-cost when disabled: instrumented code holds an
//! `Option<&dyn TraceSink>` that defaults to `None`, and emission sites
//! are a branch on that option. No files are written, no buffers grow.
//!
//! Exporters:
//! * [`jsonl`] — one JSON object per event, the stable machine format;
//! * [`chrome`] — Chrome trace-event JSON (open in Perfetto /
//!   `chrome://tracing`): one track per host, swap flow-arrows between
//!   tracks, load counters;
//! * [`audit`] — a human-readable decision audit showing the payback
//!   algebra behind every swap/hold;
//! * [`Metrics`] — counters and histograms derived from a trace bundle.

pub mod audit;
pub mod chrome;
pub mod event;
pub mod jsonl;
pub mod metrics;
pub mod sink;
pub mod trace;

pub use event::{FailureCause, FaultKind, ProtocolStep, RecoveryAction, TraceEvent};
pub use metrics::{Histogram, Metrics};
pub use sink::{Collector, NullSink, SharedSink, TraceSink};
pub use trace::{RunTrace, Trace, TraceBundle};
