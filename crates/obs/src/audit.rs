//! Decision audit: a human-readable account of every swap decision,
//! showing the payback algebra (§5 of the paper) with actual numbers —
//! `payback = (swap_time / old_iter_time) / (1 − old_perf / new_perf)`
//! — and which gate approved or vetoed the exchange. Runs that carry
//! protocol-DES events additionally get a per-run protocol summary
//! (message counts by round phase, link busy time, queue wait, decision
//! compute, peak queue depth).

use crate::event::{ProtocolStep, TraceEvent};
use crate::trace::TraceBundle;
use std::fmt::Write;

/// Per-run accumulator for protocol-DES events.
#[derive(Default)]
struct ProtocolSummary {
    /// `(count, bytes)` per step, indexed in [`ProtocolStep::ALL`] order.
    steps: [(u64, f64); ProtocolStep::ALL.len()],
    msgs: u64,
    link_busy: f64,
    queue_wait: f64,
    compute: f64,
    peak_depth: usize,
}

impl ProtocolSummary {
    fn is_empty(&self) -> bool {
        self.msgs == 0 && self.compute == 0.0 && self.peak_depth == 0
    }

    fn render(&self, out: &mut String) {
        let _ = writeln!(
            out,
            "protocol round: {} messages, link busy {:.6}s, queue wait {:.6}s, \
             decision compute {:.6}s, peak queue depth {}",
            self.msgs, self.link_busy, self.queue_wait, self.compute, self.peak_depth
        );
        for (step, &(count, bytes)) in ProtocolStep::ALL.iter().zip(&self.steps) {
            if count > 0 {
                let _ = writeln!(
                    out,
                    "    {key:<16} {count:>5} msgs {bytes:>14.0} B",
                    key = step.key()
                );
            }
        }
    }
}

/// Renders the audit table for a whole bundle.
pub fn render(bundle: &TraceBundle) -> String {
    let mut out = String::new();
    for run in &bundle.runs {
        let decisions = run
            .trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::SwapDecision { .. }))
            .count();
        let _ = writeln!(
            out,
            "== run {} seed {} ({} decision points) ==",
            run.label, run.seed, decisions
        );
        let mut protocol = ProtocolSummary::default();
        for e in &run.trace.events {
            // Exhaustive on purpose: a new event variant must be
            // classified here before the crate compiles.
            match e {
                TraceEvent::SwapDecision {
                    t,
                    iter,
                    old_iter_time,
                    swap_time,
                    app_improvement,
                    stopped_because,
                    admitted,
                    rejected,
                } => {
                    let verb = if admitted.is_empty() { "HOLD" } else { "SWAP" };
                    let _ = writeln!(
                        out,
                        "t={t:>12.3}s iter {iter:>4}: {verb}  iter_time={old_iter_time:.3}s swap_time={swap_time:.3}s"
                    );
                    for p in admitted {
                        let _ = writeln!(
                            out,
                            "    + {from:>3} -> {to:<3}  old={old:.3e} new={new:.3e} gain={gain:+.1}%  \
                             payback = ({swap_time:.3}/{old_iter_time:.3}) / (1 - {old:.3e}/{new:.3e}) = {payback:.3} iters",
                            from = p.from,
                            to = p.to,
                            old = p.old_perf,
                            new = p.new_perf,
                            gain = p.process_improvement * 100.0,
                            payback = p.payback,
                        );
                    }
                    if let Some(r) = rejected {
                        let payback = r
                            .payback
                            .map(|p| format!("{p:.3} iters"))
                            .unwrap_or_else(|| "not reached".into());
                        let _ = writeln!(
                            out,
                            "    x {from:>3} -> {to:<3}  old={old:.3e} new={new:.3e} gain={gain:+.1}%  payback = {payback}",
                            from = r.from,
                            to = r.to,
                            old = r.old_perf,
                            new = r.new_perf,
                            gain = r.process_improvement * 100.0,
                        );
                    }
                    let _ = writeln!(
                        out,
                        "      stopped: {stopped_because} [{key}]  app_improvement={app:+.1}%",
                        key = stopped_because.key(),
                        app = app_improvement * 100.0,
                    );
                }
                TraceEvent::ProtocolMsg {
                    queued,
                    start,
                    end,
                    step,
                    bytes,
                } => {
                    let i = ProtocolStep::ALL
                        .iter()
                        .position(|s| s == step)
                        .expect("step listed in ALL");
                    protocol.steps[i].0 += 1;
                    protocol.steps[i].1 += bytes;
                    protocol.msgs += 1;
                    protocol.link_busy += end - start;
                    protocol.queue_wait += start - queued;
                }
                TraceEvent::ProtocolCompute { t0, t1 } => protocol.compute += t1 - t0,
                TraceEvent::ProtocolQueueDepth { depth, .. } => {
                    protocol.peak_depth = protocol.peak_depth.max(*depth);
                }
                TraceEvent::FailureDetected {
                    t,
                    host,
                    iter,
                    cause,
                    detail,
                } => {
                    // The audit must distinguish an injected fault from
                    // an application panic — they demand different
                    // responses (recover vs. debug).
                    let why = match cause {
                        crate::event::FailureCause::InjectedCrash => "(injected crash)".into(),
                        crate::event::FailureCause::AppPanic => format!(
                            "(application panic: {})",
                            detail.as_deref().unwrap_or("no message")
                        ),
                    };
                    let at = iter
                        .map(|i| format!("iter {i:>4}"))
                        .unwrap_or_else(|| "         ".into());
                    let _ = writeln!(out, "t={t:>12.3}s {at}: FAIL  host {host} {why}");
                }
                TraceEvent::RecoveryComplete {
                    t,
                    host,
                    replacement,
                    action,
                    pause_secs,
                } => {
                    let target = replacement
                        .map(|r| format!("host {host} -> {r}"))
                        .unwrap_or_else(|| format!("host {host}"));
                    let _ = writeln!(
                        out,
                        "t={t:>12.3}s           RECOVER  {target} via {key} (pause {pause_secs:.3}s)",
                        key = action.key(),
                    );
                }
                TraceEvent::PolicyDecision {
                    t,
                    policy,
                    failed,
                    chosen,
                    ranked,
                } => {
                    let target = chosen
                        .map(|c| format!("host {failed} -> {c}"))
                        .unwrap_or_else(|| format!("host {failed} -> no spare left"));
                    let _ = writeln!(
                        out,
                        "t={t:>12.3}s           PLACE    {target} via {policy} (ranked {ranked:?})",
                    );
                }
                // Not part of the decision audit: iteration structure,
                // load, probes, swap/checkpoint execution, fault
                // injections (the failure *detection* is audited above),
                // and the minimpi message layer all have their own
                // exporters.
                TraceEvent::FaultInjected { .. }
                | TraceEvent::IterStart { .. }
                | TraceEvent::ComputeSpan { .. }
                | TraceEvent::IterEnd { .. }
                | TraceEvent::Probe { .. }
                | TraceEvent::LoadChange { .. }
                | TraceEvent::SwapExec { .. }
                | TraceEvent::Checkpoint { .. }
                | TraceEvent::MsgSend { .. }
                | TraceEvent::MsgRecv { .. }
                | TraceEvent::Collective { .. } => {}
            }
        }
        if !protocol.is_empty() {
            protocol.render(&mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;
    use swap_core::{RejectedSwap, StopReason, SwapPair};

    #[test]
    fn audit_shows_payback_computation_and_vetoes() {
        let mut b = TraceBundle::new();
        b.push(
            "swap/safe",
            0,
            Trace {
                events: vec![
                    TraceEvent::SwapDecision {
                        t: 30.0,
                        iter: 2,
                        old_iter_time: 30.0,
                        swap_time: 3.0,
                        app_improvement: 0.5,
                        stopped_because: StopReason::Exhausted,
                        admitted: vec![SwapPair {
                            from: 1,
                            to: 6,
                            old_perf: 1e8,
                            new_perf: 2e8,
                            payback: 0.2,
                            process_improvement: 1.0,
                        }],
                        rejected: None,
                    },
                    TraceEvent::SwapDecision {
                        t: 60.0,
                        iter: 3,
                        old_iter_time: 30.0,
                        swap_time: 300.0,
                        app_improvement: 0.0,
                        stopped_because: StopReason::PaybackGateFailed,
                        admitted: vec![],
                        rejected: Some(RejectedSwap {
                            from: 2,
                            to: 7,
                            old_perf: 1e8,
                            new_perf: 1.5e8,
                            process_improvement: 0.5,
                            payback: Some(30.0),
                        }),
                    },
                ],
            },
        );
        let text = render(&b);
        assert!(
            text.contains("run swap/safe seed 0 (2 decision points)"),
            "{text}"
        );
        assert!(text.contains("SWAP"), "{text}");
        assert!(text.contains("HOLD"), "{text}");
        // The payback algebra is spelled out with the actual inputs.
        assert!(text.contains("(3.000/30.000)"), "{text}");
        assert!(text.contains("= 0.200 iters"), "{text}");
        assert!(text.contains("[payback_gate]"), "{text}");
        assert!(text.contains("x   2 -> 7"), "{text}");
        // No protocol events → no protocol summary.
        assert!(!text.contains("protocol round"), "{text}");
    }

    #[test]
    fn audit_summarizes_protocol_rounds_per_step() {
        let mut b = TraceBundle::new();
        b.push(
            "protocol",
            0,
            Trace {
                events: vec![
                    TraceEvent::ProtocolMsg {
                        queued: 0.0,
                        start: 0.0,
                        end: 0.01,
                        step: ProtocolStep::Report,
                        bytes: 256.0,
                    },
                    TraceEvent::ProtocolQueueDepth { t: 0.0, depth: 1 },
                    TraceEvent::ProtocolMsg {
                        queued: 0.0,
                        start: 0.01,
                        end: 0.02,
                        step: ProtocolStep::Report,
                        bytes: 256.0,
                    },
                    TraceEvent::ProtocolQueueDepth { t: 0.0, depth: 2 },
                    TraceEvent::ProtocolCompute {
                        t0: 0.02,
                        t1: 0.021,
                    },
                    TraceEvent::ProtocolMsg {
                        queued: 0.021,
                        start: 0.021,
                        end: 0.2,
                        step: ProtocolStep::StateTransfer,
                        bytes: 1e6,
                    },
                    TraceEvent::ProtocolQueueDepth { t: 0.021, depth: 1 },
                ],
            },
        );
        let text = render(&b);
        assert!(text.contains("protocol round: 3 messages"), "{text}");
        assert!(text.contains("report"), "{text}");
        assert!(text.contains("2 msgs"), "{text}");
        assert!(text.contains("state_transfer"), "{text}");
        assert!(text.contains("peak queue depth 2"), "{text}");
        // Steps with zero messages are omitted.
        assert!(!text.contains("probe_request"), "{text}");
    }

    #[test]
    fn audit_distinguishes_injected_crashes_from_app_panics() {
        use crate::event::{FailureCause, RecoveryAction, TraceEvent};
        let mut b = TraceBundle::new();
        b.push(
            "swap/faulty",
            0,
            Trace {
                events: vec![
                    TraceEvent::FailureDetected {
                        t: 12.0,
                        host: 2,
                        iter: Some(3),
                        cause: FailureCause::InjectedCrash,
                        detail: None,
                    },
                    TraceEvent::RecoveryComplete {
                        t: 14.0,
                        host: 2,
                        replacement: Some(7),
                        action: RecoveryAction::SpareSwap,
                        pause_secs: 2.0,
                    },
                    TraceEvent::FailureDetected {
                        t: 30.0,
                        host: 4,
                        iter: None,
                        cause: FailureCause::AppPanic,
                        detail: Some("index out of bounds".into()),
                    },
                ],
            },
        );
        let text = render(&b);
        assert!(text.contains("FAIL  host 2 (injected crash)"), "{text}");
        assert!(
            text.contains("RECOVER  host 2 -> 7 via spare_swap (pause 2.000s)"),
            "{text}"
        );
        assert!(
            text.contains("FAIL  host 4 (application panic: index out of bounds)"),
            "{text}"
        );
    }

    #[test]
    fn render_is_deterministic() {
        let b = TraceBundle::new();
        assert_eq!(render(&b), render(&b));
    }
}
