//! Decision audit: a human-readable account of every swap decision,
//! showing the payback algebra (§5 of the paper) with actual numbers —
//! `payback = (swap_time / old_iter_time) / (1 − old_perf / new_perf)`
//! — and which gate approved or vetoed the exchange.

use crate::event::TraceEvent;
use crate::trace::TraceBundle;
use std::fmt::Write;

/// Renders the audit table for a whole bundle.
pub fn render(bundle: &TraceBundle) -> String {
    let mut out = String::new();
    for run in &bundle.runs {
        let decisions: Vec<&TraceEvent> = run
            .trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::SwapDecision { .. }))
            .collect();
        let _ = writeln!(
            out,
            "== run {} seed {} ({} decision points) ==",
            run.label,
            run.seed,
            decisions.len()
        );
        for e in decisions {
            let TraceEvent::SwapDecision {
                t,
                iter,
                old_iter_time,
                swap_time,
                app_improvement,
                stopped_because,
                admitted,
                rejected,
            } = e
            else {
                unreachable!("filtered to decisions");
            };
            let verb = if admitted.is_empty() { "HOLD" } else { "SWAP" };
            let _ = writeln!(
                out,
                "t={t:>12.3}s iter {iter:>4}: {verb}  iter_time={old_iter_time:.3}s swap_time={swap_time:.3}s"
            );
            for p in admitted {
                let _ = writeln!(
                    out,
                    "    + {from:>3} -> {to:<3}  old={old:.3e} new={new:.3e} gain={gain:+.1}%  \
                     payback = ({swap_time:.3}/{old_iter_time:.3}) / (1 - {old:.3e}/{new:.3e}) = {payback:.3} iters",
                    from = p.from,
                    to = p.to,
                    old = p.old_perf,
                    new = p.new_perf,
                    gain = p.process_improvement * 100.0,
                    payback = p.payback,
                );
            }
            if let Some(r) = rejected {
                let payback = r
                    .payback
                    .map(|p| format!("{p:.3} iters"))
                    .unwrap_or_else(|| "not reached".into());
                let _ = writeln!(
                    out,
                    "    x {from:>3} -> {to:<3}  old={old:.3e} new={new:.3e} gain={gain:+.1}%  payback = {payback}",
                    from = r.from,
                    to = r.to,
                    old = r.old_perf,
                    new = r.new_perf,
                    gain = r.process_improvement * 100.0,
                );
            }
            let _ = writeln!(
                out,
                "      stopped: {stopped_because} [{key}]  app_improvement={app:+.1}%",
                key = stopped_because.key(),
                app = app_improvement * 100.0,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;
    use swap_core::{RejectedSwap, StopReason, SwapPair};

    #[test]
    fn audit_shows_payback_computation_and_vetoes() {
        let mut b = TraceBundle::new();
        b.push(
            "swap/safe",
            0,
            Trace {
                events: vec![
                    TraceEvent::SwapDecision {
                        t: 30.0,
                        iter: 2,
                        old_iter_time: 30.0,
                        swap_time: 3.0,
                        app_improvement: 0.5,
                        stopped_because: StopReason::Exhausted,
                        admitted: vec![SwapPair {
                            from: 1,
                            to: 6,
                            old_perf: 1e8,
                            new_perf: 2e8,
                            payback: 0.2,
                            process_improvement: 1.0,
                        }],
                        rejected: None,
                    },
                    TraceEvent::SwapDecision {
                        t: 60.0,
                        iter: 3,
                        old_iter_time: 30.0,
                        swap_time: 300.0,
                        app_improvement: 0.0,
                        stopped_because: StopReason::PaybackGateFailed,
                        admitted: vec![],
                        rejected: Some(RejectedSwap {
                            from: 2,
                            to: 7,
                            old_perf: 1e8,
                            new_perf: 1.5e8,
                            process_improvement: 0.5,
                            payback: Some(30.0),
                        }),
                    },
                ],
            },
        );
        let text = render(&b);
        assert!(
            text.contains("run swap/safe seed 0 (2 decision points)"),
            "{text}"
        );
        assert!(text.contains("SWAP"), "{text}");
        assert!(text.contains("HOLD"), "{text}");
        // The payback algebra is spelled out with the actual inputs.
        assert!(text.contains("(3.000/30.000)"), "{text}");
        assert!(text.contains("= 0.200 iters"), "{text}");
        assert!(text.contains("[payback_gate]"), "{text}");
        assert!(text.contains("x   2 -> 7"), "{text}");
    }

    #[test]
    fn render_is_deterministic() {
        let b = TraceBundle::new();
        assert_eq!(render(&b), render(&b));
    }
}
