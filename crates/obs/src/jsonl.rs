//! JSONL export: one event per line, each wrapped with its run label
//! and seed. This is the stable machine-readable trace format — the
//! determinism tests pin its exact bytes.

use crate::event::TraceEvent;
use crate::trace::{Trace, TraceBundle};
use serde::{Deserialize, Serialize};

/// One JSONL line: `{"run": "...", "seed": N, "event": {...}}`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Record {
    pub run: String,
    pub seed: u64,
    pub event: TraceEvent,
}

/// Serializes a bundle to JSONL (trailing newline included when there
/// is at least one event).
pub fn to_jsonl(bundle: &TraceBundle) -> String {
    let mut out = String::new();
    for run in &bundle.runs {
        for event in &run.trace.events {
            let record = Record {
                run: run.label.clone(),
                seed: run.seed,
                event: event.clone(),
            };
            out.push_str(&serde_json::to_string(&record).expect("trace events serialize"));
            out.push('\n');
        }
    }
    out
}

/// Parses JSONL produced by [`to_jsonl`] back into a bundle, grouping
/// consecutive lines with the same (run, seed). Returns an error string
/// naming the first malformed line.
pub fn from_jsonl(text: &str) -> Result<TraceBundle, String> {
    let mut bundle = TraceBundle::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record: Record =
            serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        match bundle.runs.last_mut() {
            Some(last) if last.label == record.run && last.seed == record.seed => {
                last.trace.events.push(record.event);
            }
            _ => {
                bundle.push(
                    record.run,
                    record.seed,
                    Trace {
                        events: vec![record.event],
                    },
                );
            }
        }
    }
    Ok(bundle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bundle() -> TraceBundle {
        let mut b = TraceBundle::new();
        for (label, seed) in [("swap/greedy", 0u64), ("swap/greedy", 1), ("nothing", 0)] {
            let events = (0..3)
                .map(|i| TraceEvent::IterEnd {
                    t: (seed + 1) as f64 * (i + 1) as f64,
                    iter: i as usize,
                    compute_end: 0.0,
                })
                .collect();
            b.push(label, seed, Trace { events });
        }
        b
    }

    #[test]
    fn jsonl_round_trips_bundles() {
        let b = sample_bundle();
        let text = to_jsonl(&b);
        assert_eq!(text.lines().count(), 9);
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn jsonl_lines_carry_run_and_seed() {
        let text = to_jsonl(&sample_bundle());
        let first = text.lines().next().unwrap();
        assert!(
            first.starts_with("{\"run\":\"swap/greedy\",\"seed\":0,"),
            "{first}"
        );
        assert!(first.contains("\"kind\":\"iter_end\""));
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let err = from_jsonl("{\"run\":\"x\"}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }
}
