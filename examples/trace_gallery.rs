//! Trace gallery: visualize the two CPU load models (Figures 2 and 3).
//!
//! ```sh
//! cargo run --release --example trace_gallery
//! ```
//!
//! Prints ASCII renderings of an ON/OFF trace with the paper's Figure 2
//! parameters and a hyperexponential trace, together with their summary
//! statistics — a quick feel for the two dynamism models.

use mpi_swap::loadmodel::{
    replay, stats, BoundedPareto, DegenerateHyperExp, DiurnalTraceGenerator, HyperExpWorkload,
    LoadTrace, OnOffSource, ParetoWorkload, TraceReplayer,
};
use mpi_swap::simkit::rng::rng;

fn render(trace: &LoadTrace, horizon: f64, height: usize) -> String {
    let cols = 76usize;
    let peak = stats::peak_count(trace, horizon).max(1.0);
    let mut rows = vec![vec![' '; cols]; height];
    let filled: Vec<usize> = (0..cols)
        .map(|c| {
            let t = horizon * c as f64 / (cols - 1) as f64;
            let k = trace.count_at(t);
            (((k / peak) * height as f64).round() as usize).min(height)
        })
        .collect();
    for (r, row) in rows.iter_mut().enumerate() {
        for (cell, &f) in row.iter_mut().zip(&filled) {
            if height - r <= f {
                *cell = '#';
            }
        }
    }
    let mut out = String::new();
    for row in rows {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.extend(std::iter::repeat_n('-', cols));
    out.push('\n');
    out
}

fn describe(name: &str, trace: &LoadTrace, horizon: f64) {
    let s = stats::sojourn_stats(trace, horizon);
    println!("{name}");
    println!("{}", render(trace, horizon, 6));
    println!(
        "  busy {:.0}% of the time | {} busy periods | mean busy {:.1} s | mean idle {:.1} s | peak {} competitors | {} transitions\n",
        100.0 * s.busy_fraction,
        s.busy_periods,
        s.mean_busy,
        s.mean_idle,
        stats::peak_count(trace, horizon),
        stats::transition_count(trace, horizon),
    );
}

fn main() {
    let horizon = 600.0;

    // Figure 2: the paper's ON/OFF example, p=0.3, q=0.08 per second.
    let onoff = OnOffSource::fig2_example().generate(horizon, &mut rng(2));
    describe(
        "Figure 2 style — ON/OFF source (p=0.3, q=0.08, 1 s steps)",
        &onoff,
        horizon,
    );

    // The experiment-scale variant: same duty cycle, 30 s steps, so load
    // events persist across 1-minute application iterations.
    let slow = OnOffSource::for_duty_cycle(0.79, 0.08, 30.0).generate(horizon * 10.0, &mut rng(2));
    describe(
        "Experiment variant — same duty cycle, 30 s steps (6000 s shown)",
        &slow,
        horizon * 10.0,
    );

    // Figure 3: hyperexponential lifetimes, uniform arrivals, stacking
    // competitors.
    let hyper = HyperExpWorkload::new(DegenerateHyperExp::new(40.0, 0.4), 1.0 / 60.0)
        .generate(horizon, &mut rng(5));
    describe(
        "Figure 3 style — hyperexponential lifetimes (mean 40 s, CV²=4, λ=1/60)",
        &hyper,
        horizon,
    );

    // Bounded-Pareto lifetimes: the genuinely power-law tail.
    let pareto = ParetoWorkload::new(BoundedPareto::new(1.1, 5.0, 5000.0), 1.0 / 120.0)
        .generate(horizon * 10.0, &mut rng(7));
    describe(
        "Extension — bounded Pareto α=1.1 lifetimes (6000 s shown)",
        &pareto,
        horizon * 10.0,
    );

    // Realistic diurnal desktop load.
    let diurnal = DiurnalTraceGenerator {
        day_length: 3600.0,
        peak_load: 2.5,
        persistence: 0.9,
        spike_prob: 0.004,
        sample_period: 30.0,
    }
    .generate(horizon * 20.0, &mut rng(9));
    describe(
        "Extension — diurnal desktop load, 1 h 'days' (12000 s shown)",
        &diurnal,
        horizon * 20.0,
    );

    // Trace replay: export, re-parse, slice per-host windows.
    let text = replay::format_trace(&diurnal);
    let archive = replay::parse_trace(&text).expect("own format round-trips");
    let windows = TraceReplayer::new(archive, horizon * 20.0).per_host_windows(3, 2000.0);
    println!("replay: archive re-parsed from text and sliced into 3 host windows:");
    for (i, w) in windows.iter().enumerate() {
        println!(
            "  host {i}: mean load {:.2}, {} transitions in 2000 s",
            stats::mean_count(w, 2000.0),
            stats::transition_count(w, 2000.0)
        );
    }

    println!("\nthese are the exact generators behind `swapsim fig2`/`fig3`/`ext_*`.");
}
