//! Policy explorer: sweep the policy parameter space on the simulator.
//!
//! ```sh
//! cargo run --release --example policy_explorer
//! ```
//!
//! §4.1 defines the four policy knobs; the three named policies are just
//! points in that space. This example sweeps the payback threshold and
//! the history window around the paper's values and prints the execution
//! time each combination achieves, exposing the risk/benefit trade-off
//! the paper describes.

use mpi_swap::loadmodel::OnOffSource;
use mpi_swap::simulator::platform::LoadSpec;
use mpi_swap::simulator::runner::{default_seeds, run_replicated};
use mpi_swap::simulator::strategies::{Nothing, Swap};
use mpi_swap::simulator::{AppSpec, PlatformSpec};
use mpi_swap::swap_core::{HistoryWindow, PolicyParams, Predictor};

fn main() {
    // 100 MB state (the Figure 7 regime, where the payback threshold
    // actually discriminates) under a moderately dynamic environment.
    let load = LoadSpec::OnOff(OnOffSource::for_duty_cycle(0.5, 0.08, 30.0));
    let platform = PlatformSpec::hpdc03(load);
    let app = AppSpec::hpdc03(4, 1.0e8);
    let seeds = default_seeds(6);

    let nothing = run_replicated(&platform, &app, &Nothing, 4, &seeds)
        .execution_time
        .mean;
    println!("NOTHING baseline: {nothing:.0} s\n");

    let paybacks = [0.25, 0.5, 1.0, 2.0, f64::INFINITY];
    let histories = [0.0, 60.0, 300.0, 900.0];

    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>10}",
        "payback", "history", "exec time", "vs nothing", "swaps"
    );
    for &pb in &paybacks {
        for &h in &histories {
            let policy = PolicyParams::greedy()
                .with_payback_threshold(pb)
                .with_history(HistoryWindow::seconds(h))
                .with_predictor(if h == 0.0 {
                    Predictor::LastValue
                } else {
                    Predictor::WindowedMean
                });
            let r = run_replicated(&platform, &app, &Swap::new(policy), 32, &seeds);
            println!(
                "{:<10} {:>8.0} s {:>10.0} s {:>+11.1}% {:>10.1}",
                if pb.is_finite() {
                    format!("{pb:.2}")
                } else {
                    "inf".to_owned()
                },
                h,
                r.execution_time.mean,
                100.0 * (1.0 - r.execution_time.mean / nothing),
                r.mean_adaptations
            );
        }
    }

    println!("\nnamed policies at the same operating point:");
    for (name, s) in [
        ("greedy", Swap::greedy()),
        ("safe", Swap::safe()),
        ("friendly", Swap::friendly()),
    ] {
        let r = run_replicated(&platform, &app, &s, 32, &seeds);
        println!(
            "  {:<10} {:>8.0} s ({:+.1}% vs nothing, {:.1} swaps)",
            name,
            r.execution_time.mean,
            100.0 * (1.0 - r.execution_time.mean / nothing),
            r.mean_adaptations
        );
    }
}
