//! Desktop-grid owner reclamation, live: scripted evictions in the
//! thread-based runtime plus the simulated reclamation sweep.
//!
//! ```sh
//! cargo run --release --example reclamation
//! ```
//!
//! §2 of the paper: "These [cycle-stealing] systems evict application
//! processes when a resource is reclaimed by its owner. By combining our
//! swapping policies with this eviction mechanism, a process might also
//! be evicted and migrated for application performance reasons."
//! Part 1 shows the mechanism (forced migrations in `minimpi`, identical
//! numerics); part 2 shows the policy side (the simulated SWAP strategy
//! escaping reclaimed hosts).

use mpi_swap::loadmodel::OnOffSource;
use mpi_swap::minimpi::apps::JacobiApp;
use mpi_swap::minimpi::runtime::{run_iterative, RuntimeConfig};
use mpi_swap::simulator::platform::{LoadSpec, PlatformSpec};
use mpi_swap::simulator::runner::{default_seeds, run_replicated};
use mpi_swap::simulator::strategies::{Nothing, Swap};
use mpi_swap::simulator::AppSpec;

fn main() {
    // ---- Part 1: the live mechanism --------------------------------
    let app = JacobiApp { cells_per_rank: 48 };
    let baseline = run_iterative(RuntimeConfig::new(3, 3, 20), app);

    let mut cfg = RuntimeConfig::new(6, 3, 20);
    // Owners return to workers 0 and 2 mid-run.
    cfg.evictions = vec![(5, 0), (12, 2)];
    let evicted = run_iterative(cfg, app);

    println!("live runtime: 3 active + 3 spare workers, 20 iterations");
    for e in &evicted.swap_events {
        println!(
            "  iter {:>3}: owner reclaimed worker {} -> slot {} migrated to worker {}",
            e.iter, e.from_worker, e.slot, e.to_worker
        );
    }
    println!("final placement: {:?}", evicted.final_placement);
    let identical = baseline.final_states == evicted.final_states;
    println!(
        "numerics identical to uninterrupted run: {}\n",
        if identical { "YES" } else { "NO (bug!)" }
    );
    assert!(identical);

    // ---- Part 2: the policy side, simulated -------------------------
    // Owners present 40% of the time; a reclaimed host gives the guest
    // 5% of the CPU.
    let load = LoadSpec::Reclamation {
        source: OnOffSource::for_duty_cycle(0.4, 0.04, 30.0),
        weight: 19.0,
    };
    let mut spec = PlatformSpec::hpdc03(load);
    spec.horizon = 150_000.0;
    let sim_app = AppSpec::hpdc03(4, 1.0e6);
    let seeds = default_seeds(8);

    let nothing = run_replicated(&spec, &sim_app, &Nothing, 4, &seeds);
    let swap = run_replicated(&spec, &sim_app, &Swap::greedy(), 32, &seeds);
    println!("simulated reclamation sweep point (owner duty 0.4, weight 19):");
    println!(
        "  nothing: {:>7.0} s    swap(greedy): {:>7.0} s  ({:.0}% better, {:.1} swaps/run)",
        nothing.execution_time.mean,
        swap.execution_time.mean,
        100.0 * (1.0 - swap.execution_time.mean / nothing.execution_time.mean),
        swap.mean_adaptations,
    );
    println!("\nfull sweep: cargo run -p experiments --bin swapsim -- ext_reclamation");
}
