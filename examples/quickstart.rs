//! Quickstart: compare the four execution strategies on one simulated
//! platform.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's platform (32 time-shared workstations, shared
//! 6 MB/s LAN), puts a 4-process iterative application on it under a
//! moderately dynamic ON/OFF load, and prints execution time and
//! adaptation counts for NOTHING, SWAP(greedy), DLB and CR.

use mpi_swap::loadmodel::OnOffSource;
use mpi_swap::simulator::platform::LoadSpec;
use mpi_swap::simulator::runner::{default_seeds, run_replicated};
use mpi_swap::simulator::strategies::{Cr, Dlb, Nothing, Strategy, Swap};
use mpi_swap::simulator::{AppSpec, PlatformSpec};

fn main() {
    // A moderately dynamic environment: hosts are loaded half the time,
    // with load events lasting ~6 application iterations.
    let load = LoadSpec::OnOff(OnOffSource::for_duty_cycle(0.5, 0.08, 30.0));
    let platform = PlatformSpec::hpdc03(load);

    // N = 4 active processes, 1 MB of process state, 50 iterations of
    // ~60 s each.
    let app = AppSpec::hpdc03(4, 1.0e6);
    let seeds = default_seeds(8);

    let strategies: Vec<(Box<dyn Strategy>, usize)> = vec![
        (Box::new(Nothing), 4),         // no over-allocation
        (Box::new(Swap::greedy()), 32), // over-allocate everything
        (Box::new(Dlb), 4),
        (Box::new(Cr::greedy()), 32),
    ];

    println!("platform: 32 hosts, 200-400 Mflop/s, 6 MB/s shared LAN");
    println!(
        "app:      N=4, 1.8e10 flops/proc/iter, 1 MB state, {} iterations",
        app.iterations
    );
    println!("load:     ON/OFF, duty 0.50, mean busy period 375 s");
    println!("seeds:    {} replications\n", seeds.len());
    println!(
        "{:<14} {:>12} {:>8} {:>12} {:>12}",
        "strategy", "exec time", "±stderr", "adaptations", "adapt time"
    );
    let mut baseline = None;
    for (strategy, alloc) in &strategies {
        let r = run_replicated(&platform, &app, strategy.as_ref(), *alloc, &seeds);
        if baseline.is_none() {
            baseline = Some(r.execution_time.mean);
        }
        let vs = 100.0 * (1.0 - r.execution_time.mean / baseline.unwrap());
        println!(
            "{:<14} {:>10.0} s {:>8.0} {:>12.1} {:>10.1} s   ({:+.1}% vs nothing)",
            r.strategy,
            r.execution_time.mean,
            r.execution_time.stderr,
            r.mean_adaptations,
            r.mean_adapt_time,
            vs
        );
    }

    // Show where one SWAP run actually computed: host occupancy over time
    // (swaps show up as one row ending where another begins).
    let platform_inst = platform.realize(0);
    let ctx = mpi_swap::simulator::strategies::RunContext::new(&platform_inst, &app, 32);
    let run = Swap::greedy().run(&ctx);
    println!("\nhost occupancy of one swap(greedy) run (seed 0):\n");
    print!("{}", mpi_swap::simulator::gantt::render_ascii(&run, 64));

    println!("\nSWAP achieves DLB-class benefit with a 3-line code change;");
    println!("see examples/jacobi_swap.rs for the live (non-simulated) runtime.");
}
