//! The "three-line retrofit", literally.
//!
//! ```sh
//! cargo run --release --example retrofit
//! ```
//!
//! The paper's pitch: "Process swapping can be added to an existing
//! iterative application with as few as three lines of source code
//! change" — (1) include the swap header, (2) call `MPI_Swap()` in the
//! iteration loop, (3) `swap_register()` the state. This example walks
//! the same transformation in this codebase's terms, using the
//! [`minimpi::Registry`] to mirror `swap_register()` one variable at a
//! time, and runs the result under forced swaps to prove transparency.

use mpi_swap::minimpi::app::IterativeApp;
use mpi_swap::minimpi::comm::SlotComm;
use mpi_swap::minimpi::runtime::{run_iterative, Decider, RuntimeConfig};
use mpi_swap::minimpi::Registry;

/// The "legacy" computation: a per-rank power-method step on a shared
/// vector norm — the kind of loop body users already have. It knows
/// nothing about swapping; it reads and writes plain variables.
fn legacy_iteration(x: &mut [f64], gamma: &mut f64, comm: &mut SlotComm) {
    // Local update…
    for (i, v) in x.iter_mut().enumerate() {
        *v = 0.5 * *v + 1.0 / (i as f64 + 1.0 + comm.rank() as f64);
    }
    // …and a global normalization factor (the collective).
    let local: f64 = x.iter().map(|v| v * v).sum();
    let total = comm.allreduce(&local, |a, b| a + b);
    *gamma = total.sqrt();
    let denom = gamma.max(1e-12);
    for v in x.iter_mut() {
        *v /= denom;
    }
}

/// The retrofit: the state the loop carries between iterations is
/// `swap_register()`ed into a [`Registry`] — that *is* the change. The
/// runtime supplies the swap point (the end-of-`iterate` barrier), the
/// handlers, and the manager.
struct Retrofitted {
    n: usize,
}

impl IterativeApp for Retrofitted {
    type State = Registry; // ← the registered variables travel on swap

    fn init(&self, _slot: usize, _n_slots: usize) -> Registry {
        let mut reg = Registry::new();
        reg.register("x", &vec![1.0f64; self.n]); // swap_register("x", …)
        reg.register("gamma", &0.0f64); //           swap_register("gamma", …)
        reg
    }

    fn iterate(&self, _iter: usize, reg: &mut Registry, comm: &mut SlotComm) {
        let mut x: Vec<f64> = reg.get("x").expect("registered");
        let mut gamma: f64 = reg.get("gamma").expect("registered");
        legacy_iteration(&mut x, &mut gamma, comm); // unchanged legacy body
        reg.register("x", &x);
        reg.register("gamma", &gamma);
    }
}

fn main() {
    let app = || Retrofitted { n: 16 };

    let plain = run_iterative(RuntimeConfig::new(3, 3, 25), app());

    let mut cfg = RuntimeConfig::new(6, 3, 25);
    cfg.decider = Decider::ForceEvery(1); // swap something every iteration
    let swapped = run_iterative(cfg, app());

    println!(
        "plain run:    {} iterations, {} swaps",
        plain.iterations_run,
        plain.swap_count()
    );
    println!(
        "swapped run:  {} iterations, {} swaps, final placement {:?}",
        swapped.iterations_run,
        swapped.swap_count(),
        swapped.final_placement
    );

    let same = plain
        .final_states
        .iter()
        .zip(&swapped.final_states)
        .all(|(a, b)| a == b);
    println!("registered state identical after 24 forced swaps: {}", same);
    assert!(same);

    let gamma: f64 = swapped.final_states[0].get("gamma").expect("registered");
    println!("converged normalization factor gamma = {gamma:.6}");
    println!("\nthe whole retrofit was: State = Registry; register(\"x\"); register(\"gamma\").");
}
