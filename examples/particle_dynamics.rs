//! The paper's motivating workload: an iterative particle-dynamics code
//! retrofitted with process swapping.
//!
//! ```sh
//! cargo run --release --example particle_dynamics
//! ```
//!
//! §3 of the paper reports retrofitting "a real-world particle dynamics
//! code for which only 4 lines of the original source code were
//! modified". Here the equivalent retrofit is implementing the
//! `IterativeApp` trait for the particle stepper (state + loop body);
//! everything else — over-allocation, measurement, the swap manager, the
//! safe policy — comes from the runtime.

use mpi_swap::loadmodel::{LoadTrace, OnOffSource};
use mpi_swap::minimpi::apps::ParticleApp;
use mpi_swap::minimpi::runtime::{run_iterative, Decider, RuntimeConfig};
use mpi_swap::simkit::rng::stream_rng;
use mpi_swap::swap_core::{PolicyParams, SwapCost};

fn main() {
    let app = ParticleApp {
        particles_per_rank: 48,
        dt: 0.01,
    };
    let n_active = 3;
    let n_workers = 6;
    let iterations = 30;

    // Random ON/OFF load on every worker (duty 0.4, events of ~250
    // virtual seconds), like desktop workstations during work hours.
    let src = OnOffSource::for_duty_cycle(0.4, 0.08, 20.0);
    let loads: Vec<LoadTrace> = (0..n_workers)
        .map(|w| src.generate(100_000.0, &mut stream_rng(7, w as u64)))
        .collect();

    let mut cfg = RuntimeConfig::new(n_workers, n_active, iterations);
    cfg.decider = Decider::Policy(PolicyParams::safe().with_history(
        // The live runtime compresses time 1000:1; scale the safe
        // policy's 5-minute history window accordingly — in virtual
        // seconds it is unchanged.
        mpi_swap::swap_core::HistoryWindow::seconds(300.0),
    ));
    cfg.loads = loads;
    cfg.compression = 1000.0;
    cfg.cost = SwapCost::new(1e-4, 6e6);

    let report = run_iterative(cfg, app);

    println!(
        "ran {} iterations on {}+{} workers (active+spare), {} swap(s), wall {:?}",
        report.iterations_run,
        n_active,
        n_workers - n_active,
        report.swap_count(),
        report.wall_time
    );
    for e in &report.swap_events {
        println!(
            "  iter {:>3}: slot {} moved worker {} -> {} (payback {:.3} iters)",
            e.iter, e.slot, e.from_worker, e.to_worker, e.payback
        );
    }
    println!("final placement: {:?}", report.final_placement);
    println!(
        "system kinetic energy after step {}: {:.6}",
        report.final_states[0].steps, report.final_states[0].kinetic
    );

    // Physics sanity: momentum of the closed system stays ~0.
    let momentum: f64 = report.final_states.iter().flat_map(|s| s.v.iter()).sum();
    println!("net momentum: {momentum:+.3e} (should be ~0)");
    assert!(momentum.abs() < 1e-6);
}
