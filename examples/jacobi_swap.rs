//! Live process swapping: a 1-D Jacobi solver on the in-process runtime.
//!
//! ```sh
//! cargo run --release --example jacobi_swap
//! ```
//!
//! Launches 5 worker threads (2 active + 3 spares), crushes one of the
//! active workers with synthetic competing load, and lets the greedy
//! policy move the affected process to a spare — then verifies the
//! numerical result is identical to an unswapped run.

use mpi_swap::loadmodel::LoadTrace;
use mpi_swap::minimpi::apps::JacobiApp;
use mpi_swap::minimpi::runtime::{run_iterative, Decider, RuntimeConfig};
use mpi_swap::swap_core::{PolicyParams, SwapCost};

fn main() {
    let app = JacobiApp { cells_per_rank: 64 };
    let iterations = 40;

    // Baseline: 2 active workers, no spares, no load.
    let baseline = run_iterative(RuntimeConfig::new(2, 2, iterations), app);
    println!(
        "baseline: {} iterations, {} swaps, wall {:?}",
        baseline.iterations_run,
        baseline.swap_count(),
        baseline.wall_time
    );

    // Loaded run: worker 1 gets 4 competing processes from the start;
    // workers 2..4 are idle spares. Greedy should evict slot 1 quickly.
    let mut cfg = RuntimeConfig::new(5, 2, iterations);
    cfg.decider = Decider::Policy(PolicyParams::greedy());
    cfg.loads = vec![
        LoadTrace::unloaded(),
        LoadTrace::from_intervals([(0.0, 1e9); 4]), // 4 competitors forever
        LoadTrace::unloaded(),
        LoadTrace::unloaded(),
        LoadTrace::unloaded(),
    ];
    cfg.compression = 1000.0; // 1 ms wall = 1 s virtual
    cfg.cost = SwapCost::new(1e-4, 6e6); // the paper's LAN for payback math
    let swapped = run_iterative(cfg, app);

    println!(
        "with load: {} iterations, {} swap(s), wall {:?}, mean iteration {:.2} ms",
        swapped.iterations_run,
        swapped.swap_count(),
        swapped.wall_time,
        swapped.mean_iteration_secs() * 1e3
    );
    for e in &swapped.swap_events {
        println!(
            "  iter {:>3}: slot {} moved worker {} -> {} (payback {:.3} iters)",
            e.iter, e.slot, e.from_worker, e.to_worker, e.payback
        );
    }
    println!("final placement: {:?}", swapped.final_placement);
    if swapped.swap_count() > 10 {
        println!(
            "note: greedy chases every wall-clock jitter between the idle spares —\n\
             the same 'high frequency of swaps' the paper reports for its naive\n\
             greedy prototype (§3). examples/particle_dynamics.rs uses the safe\n\
             policy, which damps this."
        );
    }

    // The swap is transparent: identical numerics.
    let same = baseline
        .final_states
        .iter()
        .zip(&swapped.final_states)
        .all(|(a, b)| a.u == b.u);
    println!(
        "numerical result identical to baseline: {}",
        if same { "YES" } else { "NO (bug!)" }
    );
    assert!(same, "process swapping must not change the computation");
    assert!(
        swapped.swap_count() >= 1,
        "expected the greedy policy to evict the loaded worker"
    );
    assert_ne!(
        swapped.final_placement[1], 1,
        "slot 1 should have left the loaded worker"
    );
}
