//! JSON writers: compact and 2-space pretty, matching serde_json's
//! output formats for the value shapes the workspace produces.

use serde::value::{Number, Value};
use std::fmt::Write;

pub fn compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                compact(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                compact(item, out);
            }
            out.push('}');
        }
    }
}

pub fn pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Seq(_) => out.push_str("[]"),
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        Value::Map(_) => out.push_str("{}"),
        other => compact(other, out),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F64(v) => {
            if v.is_finite() {
                // `{:?}` is shortest-round-trip and keeps `.0` on
                // integral values — exactly serde_json's style.
                let _ = write!(out, "{v:?}");
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
