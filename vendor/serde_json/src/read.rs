//! Recursive-descent JSON parser into the serde value model.

use crate::Error;
use serde::value::{Number, Value};

pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::msg("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::msg(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char,
                self.pos - 1,
                got as char
            )));
        }
        Ok(())
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Seq(items)),
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}, found `{}`",
                        self.pos - 1,
                        other as char
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Map(entries)),
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}, found `{}`",
                        self.pos - 1,
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Consume a run of plain UTF-8 without copying byte by byte.
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| Error::msg(format!("invalid UTF-8 in string: {e}")))?,
                );
            }
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::msg("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::msg("invalid unicode escape"))?,
                        );
                    }
                    other => {
                        return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                    }
                },
                other => {
                    return Err(Error::msg(format!(
                        "unescaped control character 0x{other:02x} in string"
                    )))
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::msg("invalid hex digit in unicode escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I64(i)));
            }
        }
        // str::parse::<f64> is correctly rounded — the float_roundtrip
        // guarantee.
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F64(f)))
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}
