//! Offline stand-in for `serde_json`, backed by the vendored serde's
//! value model.
//!
//! Behavioural contract with the workspace (pinned by tests):
//!
//! * f64 round trips are **bit-exact**: writing uses Rust's shortest
//!   round-trip `{:?}` formatting, reading uses `str::parse::<f64>`,
//!   which is correctly rounded — together these are the equivalent of
//!   upstream's `float_roundtrip` feature.
//! * Non-finite floats serialize as `null` and fail to deserialize as
//!   bare `f64` (swap-core's `serde_maybe_infinite` relies on this).
//! * Integers print without a decimal point; floats always carry one
//!   (or an exponent), so `60u64` → `60` and `60.0f64` → `60.0`.
//! * Struct field order is preserved (`Value::Map` is a vec of pairs).

use serde::value::{from_value, to_value, Number, Value};
use serde::Serialize;

mod read;
mod write;

/// Error for both directions; carries a human-readable message.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = to_value(value)?;
    let mut out = String::new();
    write::compact(&v, &mut out);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = to_value(value)?;
    let mut out = String::new();
    write::pretty(&v, &mut out, 0);
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let v = read::parse(s)?;
    from_value(v).map_err(Error::from)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Re-export of the data-model value for code that wants to inspect
/// parsed JSON generically.
pub use serde::value::Value as JsonValue;

#[allow(unused)]
fn number_value(n: Number) -> Value {
    Value::Num(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_and_floats_are_distinct() {
        assert_eq!(to_string(&60u64).unwrap(), "60");
        assert_eq!(to_string(&60.0f64).unwrap(), "60.0");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
    }

    #[test]
    fn adversarial_f64_round_trip_bitwise() {
        for &x in &[
            0.0,
            -0.0,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            5e-324,
            -2.2250738585072014e-308,
            (1u64 << 53) as f64 - 1.0,
            0.1 + 0.2,
            1e300,
            -1e-300,
        ] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "value {x:?} via {json}");
        }
    }

    #[test]
    fn non_finite_serializes_null_and_refuses_to_parse() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}f\u{20ac}";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn unicode_escapes_parse() {
        let back: String = from_str(r#""é€😀""#).unwrap();
        assert_eq!(back, "é€😀");
    }

    #[test]
    fn nested_structures_round_trip() {
        let v: Vec<(f64, f64)> = vec![(1.5, -2.5), (0.0, 3.25)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1.5,-2.5],[0.0,3.25]]");
        let back: Vec<(f64, f64)> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_printing_indents() {
        let v: Vec<u64> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn whitespace_and_literals_parse() {
        let v: Vec<Option<bool>> = from_str(" [ true , null , false ] ").unwrap();
        assert_eq!(v, vec![Some(true), None, Some(false)]);
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<u64>("").is_err());
    }
}
