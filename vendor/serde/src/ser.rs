//! Serialization half: the `Serializer`/`Serialize` traits and impls
//! for the std types the workspace serializes.

use crate::value::{to_value, Number, Value};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Error constraint for serializers (mirrors `serde::ser::Error`).
pub trait Error: Sized + std::fmt::Display {
    fn custom<T: std::fmt::Display>(msg: T) -> Self;
}

/// A sink for one value. Unlike upstream's 30-method trait, everything
/// funnels through `serialize_value`; the typed methods are provided
/// conveniences so manual impls (e.g. `serde_maybe_infinite` in
/// swap-core) read like upstream serde.
pub trait Serializer: Sized {
    type Ok;
    type Error: Error;

    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Bool(v))
    }

    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Num(Number::U64(v)))
    }

    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        if v >= 0 {
            self.serialize_u64(v as u64)
        } else {
            self.serialize_value(Value::Num(Number::I64(v)))
        }
    }

    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        // serde_json writes non-finite floats as null; keep that
        // behaviour at the data-model level so every backend agrees.
        if v.is_finite() {
            self.serialize_value(Value::Num(Number::F64(v)))
        } else {
            self.serialize_value(Value::Null)
        }
    }

    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Str(v.to_owned()))
    }

    fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }

    fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<Self::Ok, Self::Error> {
        let value = to_value(v).map_err(Error::custom)?;
        self.serialize_value(value)
    }

    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }
}

/// A value that can lower itself into the data model.
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self as f64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn seq_to_value<'a, T: Serialize + 'a, S: Serializer>(
    items: impl Iterator<Item = &'a T>,
) -> Result<Value, S::Error> {
    let mut seq = Vec::new();
    for item in items {
        seq.push(to_value(item).map_err(S::Error::custom)?);
    }
    Ok(Value::Seq(seq))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value::<T, S>(self.iter())?;
        serializer.serialize_value(v)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value::<T, S>(self.iter())?;
        serializer.serialize_value(v)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value::<T, S>(self.iter())?;
        serializer.serialize_value(v)
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value::<T, S>(self.iter())?;
        serializer.serialize_value(v)
    }
}

macro_rules! serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let seq = vec![$(to_value(&self.$n).map_err(S::Error::custom)?),+];
                serializer.serialize_value(Value::Seq(seq))
            }
        }
    )*};
}
serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = Vec::with_capacity(self.len());
        for (k, v) in self {
            map.push((k.clone(), to_value(v).map_err(S::Error::custom)?));
        }
        serializer.serialize_value(Value::Map(map))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Deterministic output: sort keys like a BTreeMap would.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut map = Vec::with_capacity(self.len());
        for k in keys {
            map.push((k.clone(), to_value(&self[k]).map_err(S::Error::custom)?));
        }
        serializer.serialize_value(Value::Map(map))
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

// ---- helpers used by the derive macro ------------------------------

/// Serializes one struct field into the output map. Generic so the
/// generated code never needs to name field types.
pub fn field<T: Serialize + ?Sized, E: Error>(
    map: &mut Vec<(String, Value)>,
    name: &str,
    value: &T,
) -> Result<(), E> {
    map.push((name.to_owned(), to_value(value).map_err(E::custom)?));
    Ok(())
}

/// Serializes one struct field through a `#[serde(with = "module")]`
/// module's `serialize` function.
pub fn field_with<T: ?Sized, E: Error>(
    map: &mut Vec<(String, Value)>,
    name: &str,
    value: &T,
    with: impl FnOnce(&T, crate::value::ValueSerializer) -> Result<Value, crate::Error>,
) -> Result<(), E> {
    map.push((
        name.to_owned(),
        with(value, crate::value::ValueSerializer).map_err(E::custom)?,
    ));
    Ok(())
}
