//! The self-describing data model every serializer/deserializer in this
//! stub goes through.

use crate::{de, ser, Error};

/// A self-describing tree. `Map` is a `Vec` of pairs, not a hash map,
/// so struct field order survives a round trip — serde_json's output
/// ordering for derived structs depends on it.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(Number),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

/// Numeric payload. Integers keep their integer-ness (serde_json prints
/// `3`, not `3.0`) and floats keep exact bits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    U64(u64),
    I64(i64),
    F64(f64),
}

impl Number {
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }
}

impl Value {
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Lowers any `Serialize` type to a `Value`.
pub fn to_value<T: ser::Serialize + ?Sized>(v: &T) -> Result<Value, Error> {
    v.serialize(ValueSerializer)
}

/// Builds a typed value back out of a `Value`.
pub fn from_value<T: de::DeserializeOwned>(v: Value) -> Result<T, Error> {
    T::deserialize(ValueDeserializer::new(v))
}

/// `Serializer` whose output *is* the value tree.
pub struct ValueSerializer;

impl ser::Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;

    fn serialize_value(self, v: Value) -> Result<Value, Error> {
        Ok(v)
    }
}

/// `Deserializer` over an owned value tree.
pub struct ValueDeserializer {
    value: Value,
}

impl ValueDeserializer {
    pub fn new(value: Value) -> Self {
        ValueDeserializer { value }
    }
}

impl<'de> de::Deserializer<'de> for ValueDeserializer {
    type Error = Error;

    fn take_value(self) -> Result<Value, Error> {
        Ok(self.value)
    }
}
