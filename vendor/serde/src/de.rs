//! Deserialization half: `Deserializer`/`Deserialize` traits, impls for
//! std types, and the field-extraction helpers the derive macro emits
//! calls to.

use crate::value::{from_value, Number, Value, ValueDeserializer};
use crate::Error as VError;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Error constraint for deserializers (mirrors `serde::de::Error`).
pub trait Error: Sized + std::fmt::Display {
    fn custom<T: std::fmt::Display>(msg: T) -> Self;
}

/// A source of one self-describing value.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A value constructible from the data model.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Owned deserialization — blanket-implemented, usable as a bound
/// exactly like upstream's.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

fn unexpected<E: Error>(want: &str, got: &Value) -> E {
    E::custom(format!(
        "invalid type: expected {want}, found {}",
        got.type_name()
    ))
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(unexpected("bool", &other)),
        }
    }
}

macro_rules! deserialize_unsigned {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let n = match v {
                    Value::Num(Number::U64(n)) => n,
                    Value::Num(Number::I64(n)) if n >= 0 => n as u64,
                    other => return Err(unexpected("unsigned integer", &other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| D::Error::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}
deserialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! deserialize_signed {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let n: i64 = match v {
                    Value::Num(Number::I64(n)) => n,
                    Value::Num(Number::U64(n)) => i64::try_from(n)
                        .map_err(|_| D::Error::custom(format!("integer {n} out of range")))?,
                    other => return Err(unexpected("integer", &other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| D::Error::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}
deserialize_signed!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Num(n) => Ok(n.as_f64()),
            // A bare f64 does NOT accept null: serde_json would have
            // written non-finite values as null and then refused to
            // read them back, and swap-core's `serde_maybe_infinite`
            // depends on that asymmetry (it goes through Option<f64>).
            other => Err(unexpected("number", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Num(n) => Ok(n.as_f64() as f32),
            other => Err(unexpected("number", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(unexpected("string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(unexpected("single-char string", &other)),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(None),
            other => from_value(other).map(Some).map_err(D::Error::custom),
        }
    }
}

fn seq_items<E: Error>(v: Value) -> Result<Vec<Value>, E> {
    match v {
        Value::Seq(items) => Ok(items),
        other => Err(unexpected("sequence", &other)),
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        seq_items::<D::Error>(d.take_value()?)?
            .into_iter()
            .map(|item| from_value(item).map_err(D::Error::custom))
            .collect()
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for VecDeque<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        seq_items::<D::Error>(d.take_value()?)?
            .into_iter()
            .map(|item| from_value(item).map_err(D::Error::custom))
            .collect()
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<'de, $($t: DeserializeOwned),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<__D: Deserializer<'de>>(d: __D) -> Result<Self, __D::Error> {
                let items = seq_items::<__D::Error>(d.take_value()?)?;
                if items.len() != $len {
                    return Err(__D::Error::custom(format!(
                        "expected a tuple of {} elements, found {}",
                        $len,
                        items.len()
                    )));
                }
                let mut it = items.into_iter();
                Ok(($({
                    let _ = $n;
                    from_value::<$t>(it.next().unwrap()).map_err(__D::Error::custom)?
                },)+))
            }
        }
    )*};
}
deserialize_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

fn map_entries<E: Error>(v: Value) -> Result<Vec<(String, Value)>, E> {
    match v {
        Value::Map(entries) => Ok(entries),
        other => Err(unexpected("map", &other)),
    }
}

impl<'de, V: DeserializeOwned> Deserialize<'de> for BTreeMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        map_entries::<D::Error>(d.take_value()?)?
            .into_iter()
            .map(|(k, v)| Ok((k, from_value(v).map_err(D::Error::custom)?)))
            .collect()
    }
}

impl<'de, V: DeserializeOwned> Deserialize<'de> for HashMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        map_entries::<D::Error>(d.take_value()?)?
            .into_iter()
            .map(|(k, v)| Ok((k, from_value(v).map_err(D::Error::custom)?)))
            .collect()
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        from_value(d.take_value()?)
            .map(Box::new)
            .map_err(D::Error::custom)
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.take_value()
    }
}

// ---- helpers used by the derive macro ------------------------------

/// Removes and deserializes a named field from a struct's entry list.
pub fn take_field<T: DeserializeOwned>(
    entries: &mut Vec<(String, Value)>,
    name: &str,
) -> Result<T, VError> {
    match entries.iter().position(|(k, _)| k == name) {
        Some(idx) => from_value(entries.remove(idx).1),
        None => Err(VError::msg(format!("missing field `{name}`"))),
    }
}

/// Like `take_field`, but a missing field falls back to `Default`
/// (`#[serde(default)]`).
pub fn take_field_or_default<T: DeserializeOwned + Default>(
    entries: &mut Vec<(String, Value)>,
    name: &str,
) -> Result<T, VError> {
    match entries.iter().position(|(k, _)| k == name) {
        Some(idx) => from_value(entries.remove(idx).1),
        None => Ok(T::default()),
    }
}

/// Removes a named field as a raw value, for `#[serde(with = "...")]`
/// modules. Missing fields surface as `Null` so `Option`-based with-
/// modules treat absent and null alike.
pub fn take_raw(entries: &mut Vec<(String, Value)>, name: &str) -> Value {
    match entries.iter().position(|(k, _)| k == name) {
        Some(idx) => entries.remove(idx).1,
        None => Value::Null,
    }
}

/// Wraps a raw value back into a deserializer for with-modules.
pub fn value_deserializer(v: Value) -> ValueDeserializer {
    ValueDeserializer::new(v)
}
