//! Offline stand-in for `serde`.
//!
//! The container cannot reach crates.io, so the workspace vendors a
//! compatible subset of the serde surface it actually uses. The design
//! is value-based rather than visitor-based: serializers lower any
//! `Serialize` type to a [`value::Value`] tree (field order preserved),
//! and deserializers parse into the same tree and then build typed
//! values from it. That keeps the hand-written derive macro small while
//! preserving the externally observable formats (JSON shapes, field
//! order, f64 bit-exactness) the workspace's tests pin down.

pub mod de;
pub mod ser;
pub mod value;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};

// The derive macros share the trait names (separate namespaces), same
// as upstream serde with the `derive` feature.
pub use serde_derive::{Deserialize, Serialize};

/// The concrete error used by the value layer and by both derive-side
/// helper modules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}
