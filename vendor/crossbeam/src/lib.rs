//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `channel` module subset `minimpi` uses: clonable MPMC
//! `Sender`/`Receiver` pairs from `bounded`/`unbounded`, with
//! disconnect-aware `send`/`recv`/`try_recv`. Built on `Mutex` +
//! `Condvar` rather than a lock-free queue — correctness and the same
//! observable semantics, traded against raw throughput the simulator
//! does not need.

pub mod channel;
