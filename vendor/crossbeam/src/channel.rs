//! MPMC channels with crossbeam-compatible surface: `bounded(cap)`,
//! `unbounded()`, clonable `Sender`/`Receiver`, disconnect detection.
//!
//! `bounded(0)` degrades to capacity 1 instead of a strict rendezvous;
//! the workspace only creates bounded channels with capacity >= 1 and
//! never relies on rendezvous hand-off.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn new(cap: Option<usize>) -> Arc<Self> {
        Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        })
    }
}

/// The sending half. Clonable; the channel disconnects when every
/// sender is dropped.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half. Clonable; the channel disconnects when every
/// receiver is dropped.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel that holds at most `cap` in-flight messages
/// (minimum 1; see module docs).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Shared::new(Some(cap.max(1)));
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// Creates a channel with no capacity bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Shared::new(None);
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// Error returned by `Sender::send` when all receivers are gone; gives
/// the message back.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by `Receiver::recv` when the channel is empty and all
/// senders are gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by `Receiver::try_recv`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

impl<T> Sender<T> {
    /// Blocks while the channel is full; fails if every receiver is
    /// dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(msg));
            }
            match self.shared.cap {
                Some(cap) if queue.len() >= cap => {
                    queue = self.shared.not_full.wait(queue).unwrap();
                }
                _ => break,
            }
        }
        queue.push_back(msg);
        drop(queue);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender: wake receivers so they observe disconnection.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives; fails once the channel is both
    /// empty and disconnected.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvError);
            }
            queue = self.shared.not_empty.wait(queue).unwrap();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.queue.lock().unwrap();
        if let Some(msg) = queue.pop_front() {
            drop(queue);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if self.shared.senders.load(Ordering::SeqCst) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator over messages until disconnection.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last receiver: wake blocked senders so they fail fast.
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Iterator returned by `Receiver::iter`.
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_within_single_producer() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_is_observed() {
        let (tx, rx) = unbounded::<i32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx2, rx2) = unbounded::<i32>();
        drop(rx2);
        assert!(tx2.send(5).is_err());
    }

    #[test]
    fn try_recv_distinguishes_empty_and_disconnected() {
        let (tx, rx) = unbounded::<i32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn cross_thread_bounded_roundtrip() {
        let (tx, rx) = bounded(2);
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn mpmc_delivers_every_message_once() {
        let (tx, rx) = unbounded::<u64>();
        let mut handles = Vec::new();
        for p in 0..4u64 {
            let tx = tx.clone();
            handles.push(thread::spawn(move || {
                for i in 0..50 {
                    tx.send(p * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for h in handles {
            h.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<u64> = (0..4u64)
            .flat_map(|p| (0..50).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }
}
