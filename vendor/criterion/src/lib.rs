//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `iter`, `iter_batched`,
//! `criterion_group!`/`criterion_main!`) with a simple wall-clock
//! harness: per benchmark it warms up once, runs `sample_size` samples,
//! and prints min/mean/median. No statistical regression machinery —
//! the numbers are for before/after comparisons in this repo, not
//! publication.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (accepted for API compatibility;
/// every batch size runs setup once per measured call here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Accepts anything string-like, as real criterion's `BenchmarkId`
    /// conversions do (`&str` and `format!` strings both appear in the
    /// workspace benches).
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(name.as_ref(), self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// See [`Criterion::bench_function`] for the string-like `name`.
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_benchmark(&full, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter`/`iter_batched` record the
/// timed routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup round, unmeasured.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{name:<50} (no samples recorded)");
        return;
    }
    samples.sort();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{name:<50} min {:>12} mean {:>12} median {:>12} ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(median),
        samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function runnable by `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point (`harness = false` benches).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
