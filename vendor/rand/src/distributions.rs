//! The `Standard` distribution and the iterator adapter behind
//! `Rng::sample_iter` — the only parts of `rand::distributions` the
//! workspace uses.

use crate::RngCore;
use std::marker::PhantomData;

/// A type that can produce values of `T` from a generator.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a primitive: full range for integers,
/// uniform `[0, 1)` for floats.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u8> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits scaled into [0, 1) — the same
        // construction upstream uses.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Iterator yielded by `Rng::sample_iter`.
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: PhantomData<fn() -> T>,
}

impl<D, R, T> DistIter<D, R, T> {
    pub(crate) fn new(distr: D, rng: R) -> Self {
        DistIter {
            distr,
            rng,
            _marker: PhantomData,
        }
    }
}

impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}
