//! Offline stand-in for the `rand` crate.
//!
//! The container has no network access to crates.io, so the workspace
//! vendors a minimal, API-compatible subset of `rand` 0.8: the `Rng` /
//! `RngCore` / `SeedableRng` traits, `rngs::StdRng`, uniform ranges and
//! the `Standard` distribution. The generator is xoshiro256++ seeded via
//! SplitMix64 — *not* the ChaCha12 engine real `rand` uses, but every
//! stream is fully deterministic for a given seed, which is the property
//! the simulation study depends on (bit-identical replications, not
//! upstream-compatible streams).

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface; `seed_from_u64` is the entry point the workspace
/// uses (`simkit::rng`).
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 step — used to expand u64 seeds into full generator state.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// High-level convenience methods, blanket-implemented for every
/// `RngCore` (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        let x: f64 = Standard.sample(self);
        x < p
    }

    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    fn sample_iter<T, D: Distribution<T>>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        Self: Sized,
    {
        distributions::DistIter::new(distr, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range usable with `Rng::gen_range` (half-open and inclusive forms).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty or invalid range");
        let u: f64 = Standard.sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; fold it back in.
        if v >= self.end {
            self.start.max(prev_down(self.end))
        } else {
            v
        }
    }
}

fn prev_down(x: f64) -> f64 {
    if x.is_finite() && x > f64::MIN_POSITIVE {
        f64::from_bits(x.to_bits() - 1)
    } else {
        x
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty or invalid range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty or invalid range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased integer in `[0, span)` via rejection sampling (span > 0; a
/// span of 0 means the full 2^64 range was requested inclusively, which
/// the call sites never do).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span == u64::MAX as u128 + 1 {
        return rng.next_u64();
    }
    let span = span as u64;
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert!((0..8).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen_range(3.0..7.0);
            assert!((3.0..7.0).contains(&x));
            let n = rng.gen_range(10u64..20);
            assert!((10..20).contains(&n));
        }
    }
}
