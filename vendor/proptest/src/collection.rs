//! Collection strategies (`collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Vectors of `element` values with a length drawn from `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.start..self.len.end);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
