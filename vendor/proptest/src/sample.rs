//! Sampling strategies (`sample::select`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Picks one of the provided values uniformly.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].clone()
    }
}
