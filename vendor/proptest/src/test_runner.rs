//! The deterministic case runner.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Debug)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's assumptions don't hold; draw a replacement.
    Reject(String),
    /// A property failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// FNV-1a, so the per-test seed base is stable across platforms and
/// runs (determinism is the whole point of this stub).
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `f` until `config.cases` cases pass, drawing each case's RNG
/// from `hash(test name) ^ attempt`. Panics (failing the enclosing
/// `#[test]`) on the first property failure, with the seed needed to
/// reproduce it.
pub fn run<F>(name: &str, config: &Config, mut f: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name);
    let mut passed = 0u32;
    let mut attempt = 0u64;
    let max_attempts = config.cases as u64 * 10 + 256;
    while passed < config.cases {
        attempt += 1;
        if attempt > max_attempts {
            panic!(
                "proptest `{name}`: too many rejected cases \
                 ({passed}/{} passed after {max_attempts} attempts)",
                config.cases
            );
        }
        let seed = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest `{name}` failed at case {} (seed {seed:#x}):\n{msg}",
                passed + 1
            ),
        }
    }
}
