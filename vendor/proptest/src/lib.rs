//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` macro (with `#![proptest_config(...)]`), range and tuple
//! strategies, `collection::vec`, `sample::select`, `any::<bool>()`,
//! `prop_map`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, on purpose:
//!
//! * **Deterministic**: every case's RNG seed derives from the test
//!   name and case index, so failures reproduce exactly across runs and
//!   machines — there is no persistence file because none is needed.
//! * **No shrinking**: a failing case reports its seed and values
//!   instead of minimizing. The deterministic seeding makes re-running
//!   a failure trivial.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// `prop::` paths (`prop::sample::select`, ...) — upstream exposes the
/// same re-export module.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::sample;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runs each `fn name(pat in strategy, ...) { body }` as a `#[test]`
/// over `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = &$cfg;
            $crate::test_runner::run(stringify!($name), __config, |__rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                #[allow(unreachable_code)]
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __outcome
            });
        }
    )*};
}

/// Fails the current case (with an optional formatted message) without
/// panicking mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __l
        );
    }};
}

/// Rejects the current case; the runner draws a replacement without
/// counting it against `cases`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
