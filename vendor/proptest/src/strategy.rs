//! The `Strategy` trait and primitive strategies.

use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of `Self::Value` from the case RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($t:ident . $n:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
}

/// A fixed value (upstream's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.gen()
    }
}

/// Strategy over the full value space of `T` (`any::<bool>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}
