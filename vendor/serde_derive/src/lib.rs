//! Offline stand-in for `serde_derive`.
//!
//! `syn`/`quote` are unavailable (no crates.io access), so this parses
//! the item's `TokenStream` by hand and emits generated impls as
//! strings. It supports exactly the shapes the workspace derives:
//!
//! * named-field structs (with `#[serde(skip)]`, `#[serde(default)]`,
//!   `#[serde(with = "module")]`, `#[serde(rename = "...")]`)
//! * newtype / tuple structs (newtype serializes transparently)
//! * externally tagged enums with unit, newtype, and struct variants
//! * internally tagged enums (`#[serde(tag = "...", rename_all =
//!   "snake_case")]`) with unit and struct variants
//! * simple generic parameters (plain idents, no bounds)
//!
//! Unsupported shapes fail with a `compile_error!` naming the gap, so a
//! future derive that outgrows the subset fails loudly at build time
//! instead of producing a wrong impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

mod codegen;
mod parse;

use parse::Item;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, codegen::serialize_impl)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, codegen::deserialize_impl)
}

fn expand(input: TokenStream, gen: fn(&Item) -> Result<String, String>) -> TokenStream {
    let item = match parse::parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    match gen(&item) {
        Ok(code) => code.parse().unwrap_or_else(|e| {
            compile_error(&format!("serde_derive generated invalid code: {e}"))
        }),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!(
        "compile_error!({:?});",
        format!("serde_derive (vendored): {msg}")
    )
    .parse()
    .unwrap()
}

/// True if the token tree is the punctuation character `c`.
fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

/// True if the token tree is a group with the given delimiter.
fn is_group(tt: &TokenTree, delim: Delimiter) -> bool {
    matches!(tt, TokenTree::Group(g) if g.delimiter() == delim)
}
