//! String-based code generation for the parsed item shapes.

use crate::parse::{apply_rename_all, Body, ContainerAttrs, Field, Item, Variant, VariantShape};

const SER_ERR: &str = ".map_err(|__e| <__S::Error as ::serde::ser::Error>::custom(__e))?";
const DE_ERR: &str = ".map_err(|__e| <__D::Error as ::serde::de::Error>::custom(__e))?";

fn ser_header(item: &Item) -> String {
    let params: Vec<String> = item
        .generics
        .iter()
        .map(|g| format!("{g}: ::serde::Serialize"))
        .collect();
    let impl_generics = if params.is_empty() {
        String::new()
    } else {
        format!("<{}>", params.join(", "))
    };
    let ty_generics = if item.generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.generics.join(", "))
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n",
        name = item.name,
    )
}

fn de_header(item: &Item) -> String {
    let mut params: Vec<String> = vec!["'de".to_string()];
    params.extend(
        item.generics
            .iter()
            .map(|g| format!("{g}: ::serde::de::DeserializeOwned")),
    );
    let ty_generics = if item.generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.generics.join(", "))
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl<{params}> ::serde::Deserialize<'de> for {name}{ty_generics} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
         -> ::core::result::Result<Self, __D::Error> {{\n",
        params = params.join(", "),
        name = item.name,
    )
}

/// Emits the statements serializing `fields` of `prefix` (either
/// `self.` access or bare bindings) into a map named `__map`.
fn ser_fields(out: &mut String, fields: &[Field], accessor: impl Fn(&Field) -> String) {
    for f in fields {
        if f.attrs.skip {
            continue;
        }
        let access = accessor(f);
        if let Some(with) = &f.attrs.with {
            out.push_str(&format!(
                "::serde::ser::field_with::<_, __S::Error>(&mut __map, {key:?}, {access}, \
                 |__v, __s| {with}::serialize(__v, __s))?;\n",
                key = f.key(),
            ));
        } else {
            out.push_str(&format!(
                "::serde::ser::field::<_, __S::Error>(&mut __map, {key:?}, {access})?;\n",
                key = f.key(),
            ));
        }
    }
}

/// Emits the field initializers deserializing `fields` out of a
/// `Vec<(String, Value)>` named `__entries`.
fn de_fields(out: &mut String, fields: &[Field]) {
    for f in fields {
        if f.attrs.skip {
            out.push_str(&format!(
                "{name}: ::core::default::Default::default(),\n",
                name = f.name
            ));
        } else if let Some(with) = &f.attrs.with {
            out.push_str(&format!(
                "{name}: {with}::deserialize(::serde::de::value_deserializer(\
                 ::serde::de::take_raw(&mut __entries, {key:?}))){DE_ERR},\n",
                name = f.name,
                key = f.key(),
            ));
        } else if f.attrs.default {
            out.push_str(&format!(
                "{name}: ::serde::de::take_field_or_default(&mut __entries, {key:?}){DE_ERR},\n",
                name = f.name,
                key = f.key(),
            ));
        } else {
            out.push_str(&format!(
                "{name}: ::serde::de::take_field(&mut __entries, {key:?}){DE_ERR},\n",
                name = f.name,
                key = f.key(),
            ));
        }
    }
}

const EXPECT_MAP: &str =
    "let mut __entries = match ::serde::Deserializer::take_value(__deserializer)? {\n\
     ::serde::value::Value::Map(__m) => __m,\n\
     __other => return ::core::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
     ::std::format!(\"invalid type: expected map, found {}\", __other.type_name()))),\n\
     };\n";

fn variant_key(attrs: &ContainerAttrs, v: &Variant) -> String {
    if let Some(rename) = &v.attrs.rename {
        return rename.clone();
    }
    match &attrs.rename_all {
        Some(rule) => apply_rename_all(rule, &v.name),
        None => v.name.clone(),
    }
}

pub fn serialize_impl(item: &Item) -> Result<String, String> {
    let mut out = ser_header(item);
    match &item.body {
        Body::Struct(fields) => {
            out.push_str(
                "let mut __map: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> \
                 = ::std::vec::Vec::new();\n",
            );
            ser_fields(&mut out, fields, |f| format!("&self.{}", f.name));
            out.push_str("__serializer.serialize_value(::serde::value::Value::Map(__map))\n");
        }
        Body::TupleStruct(1) => {
            out.push_str("::serde::Serialize::serialize(&self.0, __serializer)\n");
        }
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::value::to_value(&self.{i}){SER_ERR}"))
                .collect();
            out.push_str(&format!(
                "__serializer.serialize_value(::serde::value::Value::Seq(::std::vec![{}]))\n",
                items.join(", ")
            ));
        }
        Body::UnitStruct => {
            out.push_str("__serializer.serialize_unit()\n");
        }
        Body::Enum(variants) => {
            out.push_str("match self {\n");
            for v in variants {
                let key = variant_key(&item.attrs, v);
                if let Some(tag) = &item.attrs.tag {
                    // Internally tagged.
                    match &v.shape {
                        VariantShape::Unit => out.push_str(&format!(
                            "Self::{name} => __serializer.serialize_value(\
                             ::serde::value::Value::Map(::std::vec![({tag:?}.to_string(), \
                             ::serde::value::Value::Str({key:?}.to_string()))])),\n",
                            name = v.name,
                        )),
                        VariantShape::Struct(fields) => {
                            let bindings: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            out.push_str(&format!(
                                "Self::{name} {{ {binds} }} => {{\n\
                                 let mut __map: ::std::vec::Vec<(::std::string::String, \
                                 ::serde::value::Value)> = ::std::vec![({tag:?}.to_string(), \
                                 ::serde::value::Value::Str({key:?}.to_string()))];\n",
                                name = v.name,
                                binds = bindings.join(", "),
                            ));
                            ser_fields(&mut out, fields, |f| f.name.clone());
                            out.push_str(
                                "__serializer.serialize_value(\
                                 ::serde::value::Value::Map(__map))\n}\n",
                            );
                        }
                        VariantShape::Tuple(_) => {
                            return Err(format!(
                                "internally tagged newtype variant `{}` is not supported",
                                v.name
                            ))
                        }
                    }
                } else {
                    // Externally tagged.
                    match &v.shape {
                        VariantShape::Unit => out.push_str(&format!(
                            "Self::{name} => __serializer.serialize_value(\
                             ::serde::value::Value::Str({key:?}.to_string())),\n",
                            name = v.name,
                        )),
                        VariantShape::Tuple(1) => out.push_str(&format!(
                            "Self::{name}(__f0) => {{\n\
                             let __inner = ::serde::value::to_value(__f0){SER_ERR};\n\
                             __serializer.serialize_value(::serde::value::Value::Map(\
                             ::std::vec![({key:?}.to_string(), __inner)]))\n}}\n",
                            name = v.name,
                        )),
                        VariantShape::Tuple(n) => {
                            return Err(format!(
                                "enum variant `{}` has {n} tuple fields; only newtype \
                                 variants are supported",
                                v.name
                            ))
                        }
                        VariantShape::Struct(fields) => {
                            let bindings: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            out.push_str(&format!(
                                "Self::{name} {{ {binds} }} => {{\n\
                                 let mut __map: ::std::vec::Vec<(::std::string::String, \
                                 ::serde::value::Value)> = ::std::vec::Vec::new();\n",
                                name = v.name,
                                binds = bindings.join(", "),
                            ));
                            ser_fields(&mut out, fields, |f| f.name.clone());
                            out.push_str(&format!(
                                "__serializer.serialize_value(::serde::value::Value::Map(\
                                 ::std::vec![({key:?}.to_string(), \
                                 ::serde::value::Value::Map(__map))]))\n}}\n",
                            ));
                        }
                    }
                }
            }
            out.push_str("}\n");
        }
    }
    out.push_str("}\n}\n");
    Ok(out)
}

pub fn deserialize_impl(item: &Item) -> Result<String, String> {
    let mut out = de_header(item);
    match &item.body {
        Body::Struct(fields) => {
            out.push_str(EXPECT_MAP);
            out.push_str("::core::result::Result::Ok(Self {\n");
            de_fields(&mut out, fields);
            out.push_str("})\n");
        }
        Body::TupleStruct(1) => {
            out.push_str(&format!(
                "::core::result::Result::Ok(Self(::serde::value::from_value(\
                 ::serde::Deserializer::take_value(__deserializer)?){DE_ERR}))\n",
            ));
        }
        Body::TupleStruct(n) => {
            out.push_str(&format!(
                "let __items = match ::serde::Deserializer::take_value(__deserializer)? {{\n\
                 ::serde::value::Value::Seq(__s) if __s.len() == {n} => __s,\n\
                 __other => return ::core::result::Result::Err(\
                 <__D::Error as ::serde::de::Error>::custom(\
                 \"expected a sequence of {n} elements\")),\n\
                 }};\n\
                 let mut __it = __items.into_iter();\n",
            ));
            let items: Vec<String> = (0..*n)
                .map(|_| format!("::serde::value::from_value(__it.next().unwrap()){DE_ERR}"))
                .collect();
            out.push_str(&format!(
                "::core::result::Result::Ok(Self({}))\n",
                items.join(", ")
            ));
        }
        Body::UnitStruct => {
            out.push_str(
                "let _ = ::serde::Deserializer::take_value(__deserializer)?;\n\
                 ::core::result::Result::Ok(Self)\n",
            );
        }
        Body::Enum(variants) => {
            if let Some(tag) = &item.attrs.tag {
                out.push_str(EXPECT_MAP);
                out.push_str(&format!(
                    "let __tag: ::std::string::String = \
                     ::serde::de::take_field(&mut __entries, {tag:?}){DE_ERR};\n\
                     match __tag.as_str() {{\n",
                ));
                for v in variants {
                    let key = variant_key(&item.attrs, v);
                    match &v.shape {
                        VariantShape::Unit => out.push_str(&format!(
                            "{key:?} => ::core::result::Result::Ok(Self::{name}),\n",
                            name = v.name,
                        )),
                        VariantShape::Struct(fields) => {
                            out.push_str(&format!(
                                "{key:?} => ::core::result::Result::Ok(Self::{name} {{\n",
                                name = v.name,
                            ));
                            de_fields(&mut out, fields);
                            out.push_str("}),\n");
                        }
                        VariantShape::Tuple(_) => {
                            return Err(format!(
                                "internally tagged newtype variant `{}` is not supported",
                                v.name
                            ))
                        }
                    }
                }
                out.push_str(
                    "__other => ::core::result::Result::Err(\
                     <__D::Error as ::serde::de::Error>::custom(\
                     ::std::format!(\"unknown variant `{}`\", __other))),\n}\n",
                );
            } else {
                // Externally tagged: a bare string (unit variants) or a
                // single-entry map.
                out.push_str(
                    "match ::serde::Deserializer::take_value(__deserializer)? {\n\
                     ::serde::value::Value::Str(__s) => match __s.as_str() {\n",
                );
                for v in variants {
                    if matches!(v.shape, VariantShape::Unit) {
                        let key = variant_key(&item.attrs, v);
                        out.push_str(&format!(
                            "{key:?} => ::core::result::Result::Ok(Self::{name}),\n",
                            name = v.name,
                        ));
                    }
                }
                out.push_str(
                    "__other => ::core::result::Result::Err(\
                     <__D::Error as ::serde::de::Error>::custom(\
                     ::std::format!(\"unknown variant `{}`\", __other))),\n\
                     },\n\
                     ::serde::value::Value::Map(mut __m) if __m.len() == 1 => {\n\
                     let (__k, __v) = __m.pop().unwrap();\n\
                     match __k.as_str() {\n",
                );
                for v in variants {
                    let key = variant_key(&item.attrs, v);
                    match &v.shape {
                        VariantShape::Unit => out.push_str(&format!(
                            "{key:?} => ::core::result::Result::Ok(Self::{name}),\n",
                            name = v.name,
                        )),
                        VariantShape::Tuple(1) => out.push_str(&format!(
                            "{key:?} => ::core::result::Result::Ok(Self::{name}(\
                             ::serde::value::from_value(__v){DE_ERR})),\n",
                            name = v.name,
                        )),
                        VariantShape::Tuple(n) => {
                            return Err(format!(
                                "enum variant `{}` has {n} tuple fields; only newtype \
                                 variants are supported",
                                v.name
                            ))
                        }
                        VariantShape::Struct(fields) => {
                            out.push_str(&format!(
                                "{key:?} => {{\n\
                                 let mut __entries = match __v {{\n\
                                 ::serde::value::Value::Map(__m2) => __m2,\n\
                                 __other => return ::core::result::Result::Err(\
                                 <__D::Error as ::serde::de::Error>::custom(\
                                 \"expected map for struct variant\")),\n\
                                 }};\n\
                                 ::core::result::Result::Ok(Self::{name} {{\n",
                                name = v.name,
                            ));
                            de_fields(&mut out, fields);
                            out.push_str("})\n}\n");
                        }
                    }
                }
                out.push_str(
                    "__other => ::core::result::Result::Err(\
                     <__D::Error as ::serde::de::Error>::custom(\
                     ::std::format!(\"unknown variant `{}`\", __other))),\n\
                     }\n\
                     }\n\
                     __other => ::core::result::Result::Err(\
                     <__D::Error as ::serde::de::Error>::custom(\
                     ::std::format!(\"invalid type for enum: found {}\", __other.type_name()))),\n\
                     }\n",
                );
            }
        }
    }
    out.push_str("}\n}\n");
    Ok(out)
}
