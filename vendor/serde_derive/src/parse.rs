//! Hand parser for the subset of item syntax the derive supports.

use crate::{is_group, is_punct};
use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Container-level `#[serde(...)]` attributes.
#[derive(Default, Debug)]
pub struct ContainerAttrs {
    pub tag: Option<String>,
    pub rename_all: Option<String>,
}

/// Field-level `#[serde(...)]` attributes.
#[derive(Default, Debug)]
pub struct FieldAttrs {
    pub skip: bool,
    pub default: bool,
    pub with: Option<String>,
    pub rename: Option<String>,
}

#[derive(Debug)]
pub struct Field {
    pub name: String,
    pub attrs: FieldAttrs,
}

impl Field {
    /// The key this field uses in serialized output.
    pub fn key(&self) -> &str {
        self.attrs.rename.as_deref().unwrap_or(&self.name)
    }
}

#[derive(Debug)]
pub enum VariantShape {
    Unit,
    /// Tuple payload with the given arity (only arity 1 is generated).
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
pub struct Variant {
    pub name: String,
    pub attrs: FieldAttrs,
    pub shape: VariantShape,
}

#[derive(Debug)]
pub enum Body {
    Struct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
pub struct Item {
    pub name: String,
    /// Plain type-parameter idents (no bounds supported).
    pub generics: Vec<String>,
    pub attrs: ContainerAttrs,
    pub body: Body,
}

pub fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens: Tokens = input.into_iter().peekable();

    let mut attrs = ContainerAttrs::default();
    for serde_attr in parse_attrs(&mut tokens)? {
        apply_container_attr(&mut attrs, &serde_attr)?;
    }
    skip_visibility(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    let generics = parse_generics(&mut tokens)?;

    if matches!(tokens.peek(), Some(tt) if is_punct(tt, '?') || matches!(tt, TokenTree::Ident(id) if id.to_string() == "where"))
    {
        return Err("`where` clauses on derived types are not supported".into());
    }

    let body = match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(tt) if is_punct(&tt, ';') => Body::UnitStruct,
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body, found {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };

    Ok(Item {
        name,
        generics,
        attrs,
        body,
    })
}

/// Consumes leading attributes, returning the token streams of any
/// `#[serde(...)]` groups.
fn parse_attrs(tokens: &mut Tokens) -> Result<Vec<TokenStream>, String> {
    let mut serde_attrs = Vec::new();
    while matches!(tokens.peek(), Some(tt) if is_punct(tt, '#')) {
        tokens.next();
        let group = match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => return Err(format!("malformed attribute: {other:?}")),
        };
        let mut inner = group.stream().into_iter();
        match inner.next() {
            Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {
                if let Some(TokenTree::Group(args)) = inner.next() {
                    serde_attrs.push(args.stream());
                }
            }
            _ => {}
        }
    }
    Ok(serde_attrs)
}

fn apply_container_attr(attrs: &mut ContainerAttrs, stream: &TokenStream) -> Result<(), String> {
    for (key, value) in parse_meta_pairs(stream.clone())? {
        match (key.as_str(), value) {
            ("tag", Some(v)) => attrs.tag = Some(v),
            ("rename_all", Some(v)) => attrs.rename_all = Some(v),
            ("deny_unknown_fields", None) => {}
            (other, _) => {
                return Err(format!("unsupported container attribute `{other}`"));
            }
        }
    }
    Ok(())
}

fn parse_field_attrs(streams: &[TokenStream]) -> Result<FieldAttrs, String> {
    let mut attrs = FieldAttrs::default();
    for stream in streams {
        for (key, value) in parse_meta_pairs(stream.clone())? {
            match (key.as_str(), value) {
                ("skip", None) | ("skip_serializing", None) | ("skip_deserializing", None) => {
                    attrs.skip = true;
                }
                ("default", None) => attrs.default = true,
                ("with", Some(v)) => attrs.with = Some(v),
                ("rename", Some(v)) => attrs.rename = Some(v),
                (other, _) => {
                    return Err(format!("unsupported field attribute `{other}`"));
                }
            }
        }
    }
    Ok(attrs)
}

/// Parses `key`, `key = "value"` pairs separated by commas.
fn parse_meta_pairs(stream: TokenStream) -> Result<Vec<(String, Option<String>)>, String> {
    let mut out = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        let key = match tt {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("unexpected token in serde attribute: {other:?}")),
        };
        let mut value = None;
        if matches!(tokens.peek(), Some(tt) if is_punct(tt, '=')) {
            tokens.next();
            match tokens.next() {
                Some(TokenTree::Literal(lit)) => {
                    let text = lit.to_string();
                    value = Some(text.trim_matches('"').to_string());
                }
                other => return Err(format!("expected string literal, found {other:?}")),
            }
        }
        out.push((key, value));
        if matches!(tokens.peek(), Some(tt) if is_punct(tt, ',')) {
            tokens.next();
        }
    }
    Ok(out)
}

fn skip_visibility(tokens: &mut Tokens) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(tt) if is_group(tt, Delimiter::Parenthesis)) {
            tokens.next();
        }
    }
}

/// Parses `<A, B>` into plain idents; rejects lifetimes/bounds (no
/// derived type in the workspace uses them).
fn parse_generics(tokens: &mut Tokens) -> Result<Vec<String>, String> {
    let mut params = Vec::new();
    if !matches!(tokens.peek(), Some(tt) if is_punct(tt, '<')) {
        return Ok(params);
    }
    tokens.next();
    loop {
        match tokens.next() {
            Some(TokenTree::Ident(id)) => params.push(id.to_string()),
            Some(tt) if is_punct(&tt, '>') => return Ok(params),
            other => {
                return Err(format!(
                    "unsupported generics (only plain type parameters): {other:?}"
                ))
            }
        }
        match tokens.next() {
            Some(tt) if is_punct(&tt, ',') => continue,
            Some(tt) if is_punct(&tt, '>') => return Ok(params),
            other => {
                return Err(format!(
                    "unsupported generics (bounds/defaults not supported): {other:?}"
                ))
            }
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut tokens: Tokens = stream.into_iter().peekable();
    loop {
        if tokens.peek().is_none() {
            return Ok(fields);
        }
        let attr_streams = parse_attrs(&mut tokens)?;
        let attrs = parse_field_attrs(&attr_streams)?;
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match tokens.next() {
            Some(tt) if is_punct(&tt, ':') => {}
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        skip_type(&mut tokens);
        fields.push(Field { name, attrs });
        if matches!(tokens.peek(), Some(tt) if is_punct(tt, ',')) {
            tokens.next();
        }
    }
}

/// Consumes a type up to a top-level comma. Commas inside `<...>` (and
/// inside any delimiter group, which the tokenizer already nests) do
/// not terminate the type.
fn skip_type(tokens: &mut Tokens) {
    let mut angle_depth = 0usize;
    while let Some(tt) = tokens.peek() {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                ',' if angle_depth == 0 => return,
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                _ => {}
            }
        }
        tokens.next();
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut tokens: Tokens = stream.into_iter().peekable();
    while tokens.peek().is_some() {
        // Leading attrs / visibility on tuple fields.
        let _ = parse_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        skip_type(&mut tokens);
        count += 1;
        if matches!(tokens.peek(), Some(tt) if is_punct(tt, ',')) {
            tokens.next();
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut tokens: Tokens = stream.into_iter().peekable();
    loop {
        if tokens.peek().is_none() {
            return Ok(variants);
        }
        let attr_streams = parse_attrs(&mut tokens)?;
        let attrs = parse_field_attrs(&attr_streams)?;
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                tokens.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, attrs, shape });
        if matches!(tokens.peek(), Some(tt) if is_punct(tt, ',')) {
            tokens.next();
        }
    }
}

/// Applies a `rename_all` rule to a variant name.
pub fn apply_rename_all(rule: &str, name: &str) -> String {
    match rule {
        "snake_case" => {
            let mut out = String::new();
            for (i, ch) in name.chars().enumerate() {
                if ch.is_ascii_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.push(ch.to_ascii_lowercase());
                } else {
                    out.push(ch);
                }
            }
            out
        }
        "lowercase" => name.to_lowercase(),
        "UPPERCASE" => name.to_uppercase(),
        "kebab-case" => apply_rename_all("snake_case", name).replace('_', "-"),
        // Unknown rules pass the name through unchanged; the round-trip
        // tests would catch a silently wrong mapping.
        _ => name.to_string(),
    }
}
