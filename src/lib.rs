//! # mpi-swap — facade crate
//!
//! Re-exports the whole workspace behind one dependency. See the README
//! for the architecture overview and `DESIGN.md` for the paper mapping.
//!
//! * [`swap_core`] — policies, payback algebra, decision engine (the
//!   paper's contribution).
//! * [`simkit`] — discrete-event + fluid simulation substrate.
//! * [`loadmodel`] — ON/OFF and hyperexponential CPU load models.
//! * [`faults`] — deterministic fault injection: crash/blackout/link
//!   schedules, correlated rack shocks, per-host MTBF spread.
//! * [`policy`] — the pluggable decision layer: spare-placement and
//!   checkpoint-interval policies the strategies consult.
//! * [`minimpi`] — in-process MPI-like runtime with live process swapping.
//! * [`simulator`] — platform/application models and the four execution
//!   strategies (NOTHING, SWAP, DLB, CR) plus the experiment runner.

pub use faults;
pub use loadmodel;
pub use minimpi;
pub use obs;
pub use policy;
pub use simkit;
pub use simulator;
pub use swap_core;
